#include "quadtree/tree_stats.h"

#include <cmath>
#include <cstdio>

namespace mlq {

TreeStats ComputeTreeStats(const MemoryLimitedQuadtree& tree) {
  TreeStats stats;
  const double root_avg = tree.root().summary().Avg();
  const double redundancy_threshold = 0.01 * std::abs(root_avg);
  int64_t redundant = 0;
  int64_t leaf_depth_sum = 0;

  tree.ForEachNode([&](const NodeView& node, const Box&) {
    ++stats.num_nodes;
    const int depth = node.depth();
    if (depth > stats.max_depth_present) stats.max_depth_present = depth;
    if (static_cast<size_t>(depth) >= stats.nodes_per_depth.size()) {
      stats.nodes_per_depth.resize(static_cast<size_t>(depth) + 1, 0);
      stats.points_per_depth.resize(static_cast<size_t>(depth) + 1, 0);
    }
    ++stats.nodes_per_depth[static_cast<size_t>(depth)];
    stats.points_per_depth[static_cast<size_t>(depth)] += node.summary().count;
    if (node.IsLeaf()) {
      ++stats.num_leaves;
      leaf_depth_sum += depth;
    }
    if (node.has_parent() &&
        std::abs(node.summary().Avg() - node.parent().summary().Avg()) <
            redundancy_threshold) {
      ++redundant;
    }
  });

  if (stats.num_leaves > 0) {
    stats.mean_leaf_depth = static_cast<double>(leaf_depth_sum) /
                            static_cast<double>(stats.num_leaves);
  }
  if (stats.num_nodes > 1) {
    stats.redundant_node_fraction =
        static_cast<double>(redundant) / static_cast<double>(stats.num_nodes - 1);
  }
  return stats;
}

TreeStats MergeTreeStats(const std::vector<TreeStats>& parts) {
  TreeStats total;
  double leaf_depth_weighted = 0.0;
  double redundant_weighted = 0.0;
  int64_t nonroot_nodes = 0;
  for (const TreeStats& part : parts) {
    total.num_nodes += part.num_nodes;
    total.num_leaves += part.num_leaves;
    if (part.max_depth_present > total.max_depth_present) {
      total.max_depth_present = part.max_depth_present;
    }
    // The two depth vectors are merged each by its own length:
    // ComputeTreeStats keeps them in lockstep, but a hand-assembled part
    // (stats recovered from a snapshot, say) may carry them at different
    // lengths, and indexing one by the other's size would read out of
    // bounds.
    if (part.nodes_per_depth.size() > total.nodes_per_depth.size()) {
      total.nodes_per_depth.resize(part.nodes_per_depth.size(), 0);
    }
    for (size_t d = 0; d < part.nodes_per_depth.size(); ++d) {
      total.nodes_per_depth[d] += part.nodes_per_depth[d];
    }
    if (part.points_per_depth.size() > total.points_per_depth.size()) {
      total.points_per_depth.resize(part.points_per_depth.size(), 0);
    }
    for (size_t d = 0; d < part.points_per_depth.size(); ++d) {
      total.points_per_depth[d] += part.points_per_depth[d];
    }
    leaf_depth_weighted +=
        part.mean_leaf_depth * static_cast<double>(part.num_leaves);
    if (part.num_nodes > 1) {
      // Root-only or empty parts carry no non-root nodes; without this
      // guard a part with num_nodes == 0 would subtract weight.
      redundant_weighted += part.redundant_node_fraction *
                            static_cast<double>(part.num_nodes - 1);
      nonroot_nodes += part.num_nodes - 1;
    }
  }
  if (total.num_leaves > 0) {
    total.mean_leaf_depth =
        leaf_depth_weighted / static_cast<double>(total.num_leaves);
  }
  if (nonroot_nodes > 0) {
    total.redundant_node_fraction =
        redundant_weighted / static_cast<double>(nonroot_nodes);
  }
  return total;
}

std::string TreeStatsToString(const TreeStats& stats) {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "nodes=%lld leaves=%lld mean_leaf_depth=%.2f redundant=%.1f%%\n",
                static_cast<long long>(stats.num_nodes),
                static_cast<long long>(stats.num_leaves),
                stats.mean_leaf_depth, 100.0 * stats.redundant_node_fraction);
  out += buf;
  for (size_t depth = 0; depth < stats.nodes_per_depth.size(); ++depth) {
    std::snprintf(buf, sizeof(buf), "  depth %zu: %6lld nodes, %9lld points\n",
                  depth,
                  static_cast<long long>(stats.nodes_per_depth[depth]),
                  static_cast<long long>(stats.points_per_depth[depth]));
    out += buf;
  }
  return out;
}

std::string DumpTree(const MemoryLimitedQuadtree& tree, int max_nodes) {
  std::string out;
  char buf[256];
  int emitted = 0;
  tree.ForEachNode([&](const NodeView& node, const Box& box) {
    if (emitted >= max_nodes) return;
    ++emitted;
    std::snprintf(buf, sizeof(buf), "%*s%s: n=%lld avg=%.4g sse=%.4g%s\n",
                  2 * node.depth(), "", box.ToString().c_str(),
                  static_cast<long long>(node.summary().count),
                  node.summary().Avg(), node.summary().Sse(),
                  node.IsLeaf() ? " [leaf]" : "");
    out += buf;
  });
  if (emitted >= max_nodes) out += "  ... (truncated)\n";
  return out;
}

}  // namespace mlq
