#ifndef MLQ_QUADTREE_SHARED_NODE_ARENA_H_
#define MLQ_QUADTREE_SHARED_NODE_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/stats.h"

namespace mlq {

// Index of a node inside a node arena. 32 bits address four billion nodes —
// far beyond any budget the paper (1.8 KB!) or the serving layer uses —
// at half the footprint of a pointer, and indices stay valid when the
// arena grows or a tree is serialized.
using NodeIndex = uint32_t;
inline constexpr NodeIndex kInvalidNodeIndex = 0xFFFFFFFFu;

// One block of the memory-limited quadtree, laid out for arena storage.
//
// A node stores the summary triple of the data points that map into its
// block (Section 4.1) plus tree-structure bookkeeping. All 2^d potential
// children of a node live in ONE contiguous, 2^d-aligned group of arena
// slots ("child block"): the child for quadrant q, when present, is slot
// `first_child + q`. Child lookup on the predict/insert descent is a
// single indexed load — no pointer chase, no sibling scan.
struct PooledNode {
  SummaryTriple summary;                      // 24 bytes
  int64_t last_touch = 0;                     // Insertion tick, recency ext.
  NodeIndex parent = kInvalidNodeIndex;
  NodeIndex first_child = kInvalidNodeIndex;  // Child-block base; free link.
  uint8_t index_in_parent = 0;                // Quadrant in the parent.
  uint8_t num_children = 0;
  uint16_t depth = 0;                         // 0 = root.
  // Decay epoch this node's summary was last aged to (windowed-summary
  // extension; see MlqConfig::decay_half_life). Occupies what used to be
  // padding, so the node stays 48 bytes; 0 — the value every node carries
  // when decay is off — keeps the layout bit-identical to the seed.
  uint32_t decay_epoch = 0;

  bool IsLeaf() const { return num_children == 0; }
};
static_assert(sizeof(PooledNode) == 48, "keep the hot-path node packed");

// index_in_parent value marking a slot that belongs to an allocated block
// but holds no node: the quadrant is not materialized, or the whole block
// sits on the free-list. The marker exceeds any real quadrant (fanout is
// capped at 128, quadrants 0..127), which makes the O(1) quadrant
// comparison in NodePool::Child reject vacant slots for free.
inline constexpr uint8_t kVacantSlot = 0xFF;

inline void MarkVacantSlot(PooledNode& n) {
  n.summary = SummaryTriple{};
  n.last_touch = 0;
  n.parent = kInvalidNodeIndex;
  n.first_child = kInvalidNodeIndex;
  n.index_in_parent = kVacantSlot;
  n.num_children = 0;
  n.depth = 0;
  n.decay_epoch = 0;
}

// Slab-backed arena of quadtree nodes, shareable between many trees.
//
// Storage is a sequence of fixed-size slabs (kSlabSlots nodes each) indexed
// through a fixed table of atomic slab pointers, so node addresses are
// stable for the arena's whole lifetime: a reader descending one tree is
// never invalidated by another tree growing the arena. Synchronization
// contract: allocation/release/compaction take the arena mutex; plain
// node reads and writes are the OWNING TREE's to serialize (each tree only
// ever touches blocks it allocated, and publication of a freshly appended
// slab pointer happens-before any index into it escapes AllocateBlock).
//
// Blocks are fanout-sized and fanout-aligned and never straddle a slab
// boundary (every supported fanout divides kSlabSlots). Fully vacated
// blocks go onto a LIFO free-list shared by every tree on the arena, so
// compression churn in one model recycles slots for its neighbours.
//
// The arena tracks PHYSICAL bytes (slabs held) separately from each tree's
// LOGICAL budget (Section 4.3 accounting, owned by MemoryLimitedQuadtree).
// Physical high-water never shrinks on its own; Compact() below is the
// explicit stop-the-world reclamation pass.
class SharedNodeArena {
 public:
  static constexpr size_t kSlabShift = 11;
  static constexpr size_t kSlabSlots = size_t{1} << kSlabShift;  // 2048 nodes
  static constexpr size_t kSlabMask = kSlabSlots - 1;
  // 4096 slabs * 2048 slots * 48 B ≈ 400 MB of nodes per arena; the table
  // itself is a fixed 32 KB so growth never moves it.
  static constexpr size_t kMaxSlabs = 4096;

  // `fanout` is 2^d: the number of slots per child block.
  explicit SharedNodeArena(int fanout);
  ~SharedNodeArena();

  SharedNodeArena(const SharedNodeArena&) = delete;
  SharedNodeArena& operator=(const SharedNodeArena&) = delete;

  int fanout() const { return fanout_; }

  PooledNode& node(NodeIndex index) {
    return slabs_[index >> kSlabShift].load(std::memory_order_relaxed)
        [index & kSlabMask];
  }
  const PooledNode& node(NodeIndex index) const {
    return slabs_[index >> kSlabShift].load(std::memory_order_relaxed)
        [index & kSlabMask];
  }

  // Base pointer of the child block starting at `base` (must be
  // block-aligned). Blocks never straddle a slab boundary, so one slab
  // resolution covers all `fanout` slots: loops that scan a whole block
  // should index off this pointer instead of calling node() per slot —
  // the compiler cannot hoist the atomic slab load out of a loop.
  PooledNode* block(NodeIndex base) { return &node(base); }
  const PooledNode* block(NodeIndex base) const { return &node(base); }

  // Allocates one fanout-sized block (free-list first, then bump) with every
  // slot marked vacant. Thread-safe.
  NodeIndex AllocateBlock();

  // Returns a fully vacated block to the shared free-list. Thread-safe.
  void ReleaseBlock(NodeIndex base);

  // Bookkeeping hook for trees: net change in live nodes. Thread-safe.
  void NoteLiveDelta(int64_t delta) {
    live_.fetch_add(delta, std::memory_order_relaxed);
  }

  // Pre-sizes the arena to at least `slots` slots of backing storage.
  void Reserve(size_t slots);

  // Live nodes across every tree on this arena.
  int64_t live_count() const { return live_.load(std::memory_order_relaxed); }
  // Slots currently parked on the shared block free-list.
  int64_t free_count() const {
    return free_count_.load(std::memory_order_relaxed);
  }
  // Total slots ever materialized (live + vacant + free-listed).
  size_t slot_count() const { return bump_.load(std::memory_order_relaxed); }
  // Exact bytes of backing storage the arena holds right now.
  int64_t PhysicalCapacityBytes() const {
    return physical_bytes_.load(std::memory_order_relaxed);
  }
  // High-water mark of PhysicalCapacityBytes() since construction (reset
  // only by Compact()).
  int64_t PeakPhysicalBytes() const {
    return peak_physical_bytes_.load(std::memory_order_relaxed);
  }
  int64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }

  // Maintenance signal: a tree on this arena ran a compression pass (the
  // budget-pressure event the scheduler keys epochs off). Thread-safe; the
  // owning tree calls it from CompressInternal.
  void NoteCompression() {
    tree_compressions_.fetch_add(1, std::memory_order_relaxed);
  }
  // Total tree compressions across every tree on this arena since
  // construction (monotonic — schedulers diff it across ticks).
  int64_t tree_compressions() const {
    return tree_compressions_.load(std::memory_order_relaxed);
  }

  // Reclaimable fraction of the arena: free-listed slots / materialized
  // slots. 0 means dense (every slot below the bump is in a live block);
  // equivalently 1 - live-block-slots/capacity, the scheduler's
  // fragmentation-ratio signal.
  double FragmentationRatio() const {
    const auto slots = static_cast<int64_t>(slot_count());
    if (slots == 0) return 0.0;
    return static_cast<double>(free_count()) / static_cast<double>(slots);
  }

  // Registers the location of a tree's root index so Compact() can both
  // discover the live forest and patch roots after moving blocks. The
  // pointee must stay at a stable address until UnregisterRoot.
  void RegisterRoot(NodeIndex* root);
  void UnregisterRoot(NodeIndex* root);

  // Walks the subtree rooted at `root` (which must occupy slot 0 of its
  // block), vacates every slot and returns all its blocks to the free-list.
  // Returns the number of live nodes released; live_count() is debited.
  // Used by tree teardown on shared arenas.
  int64_t ReleaseTree(NodeIndex root);

  struct CompactionStats {
    int64_t physical_bytes_before = 0;
    int64_t physical_bytes_after = 0;
    int64_t bytes_reclaimed = 0;
    int64_t blocks_moved = 0;
  };

  // Stop-the-world compaction: rewrites every registered tree's live blocks
  // into a fresh, dense slab sequence in descent (pre-order) order, patches
  // the registered root indices, empties the free-list and frees the old
  // slabs. Callers MUST quiesce every tree on the arena first (e.g. via
  // CostModel::LockForMaintenance); no reader or writer may hold a
  // NodeIndex across this call. Slot indices change; serialized bytes and
  // predictions do not.
  CompactionStats Compact();

  struct CompactStepStats {
    int64_t blocks_moved = 0;
    int64_t bytes_reclaimed = 0;
    // True when the arena is dense after this step: no free block remains
    // below the bump, so further steps would be no-ops until new
    // fragmentation accrues.
    bool done = false;
  };

  // Incremental compaction: performs at most O(budget_slots) bounded work
  // — relocating live blocks from the top of the arena into the lowest
  // reserved free blocks, in place — then trims the bump pointer and any
  // now-empty tail slabs. Repeated calls converge to the same dense
  // physical footprint as Compact() — block ORDER differs (bottom-fill vs
  // pre-order rewrite), which serialized bytes and predictions are
  // independent of.
  //
  // Every cost inside a step is budget-proportional, never O(free-list):
  // the step pops a bounded number of free-list entries into a persistent
  // sorted reserve (compact_reserve_), consumes reserve entries as
  // relocation destinations lowest-first, and absorbs a bounded number of
  // reserved/moved-out blocks when lowering the bump. The reserve carries
  // over between steps; if the arena mutated in between (any allocation or
  // release), the reserve is handed back to the free-list and rebuilt.
  //
  // Relocation fix-up protocol, per moved block: the moved nodes' common
  // parent has its first_child re-pointed; every moved node's children get
  // their parent link re-pointed; a moved root is patched through its
  // registered root handle (RegisterRoot). All under the arena mutex.
  //
  // Same quiesce contract as Compact() — no descent may be in flight —
  // but held only for this step's bounded work, so a scheduler can
  // interleave steps with serving traffic instead of stopping the world
  // for the whole pass. compactions() is credited when a step both did
  // work and finished the layout.
  CompactStepStats CompactStep(int64_t budget_slots);

  // Structural self-check of the whole arena: block alignment, vacant/live
  // slot markers, the free-list reaching exactly the freed blocks, and the
  // live/free counters adding up. Returns false with a description in
  // `error` on corruption. Callers must quiesce writers first.
  bool CheckConsistency(std::string* error) const;

 private:
  // All require mutex_.
  void AppendSlabLocked();
  NodeIndex AllocateBlockLocked();
  void MoveBlockLocked(NodeIndex src, NodeIndex dest);

  const int fanout_;
  mutable std::mutex mutex_;
  // Fixed table of slab pointers; entries are append-only outside Compact().
  std::unique_ptr<std::atomic<PooledNode*>[]> slabs_;
  size_t num_slabs_ = 0;                     // Guarded by mutex_.
  NodeIndex free_head_ = kInvalidNodeIndex;  // Block bases, LIFO; mutex_.
  std::vector<NodeIndex*> roots_;            // Guarded by mutex_.
  // Incremental-compaction reserve (guarded by mutex_): free blocks popped
  // off the free-list by CompactStep, held sorted as pending relocation
  // destinations across steps. Entries still count toward free_count_.
  std::set<NodeIndex> compact_reserve_;
  // Bumped by every block allocation/release (under mutex_); CompactStep
  // compares against reserve_epoch_ to detect mutations between steps.
  uint64_t mutation_epoch_ = 0;
  uint64_t reserve_epoch_ = 0;
  std::atomic<size_t> bump_{0};              // First never-materialized slot.
  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> free_count_{0};
  std::atomic<int64_t> physical_bytes_{0};
  std::atomic<int64_t> peak_physical_bytes_{0};
  std::atomic<int64_t> compactions_{0};
  std::atomic<int64_t> tree_compressions_{0};
};

}  // namespace mlq

#endif  // MLQ_QUADTREE_SHARED_NODE_ARENA_H_
