#ifndef MLQ_QUADTREE_TREE_STATS_H_
#define MLQ_QUADTREE_TREE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "quadtree/memory_limited_quadtree.h"

namespace mlq {

// Introspection over a memory-limited quadtree: where the model is spending
// its memory and at what resolution it can answer. Used by the ablation
// benches and handy for debugging a model that predicts poorly.
struct TreeStats {
  int64_t num_nodes = 0;
  int64_t num_leaves = 0;
  int max_depth_present = 0;
  // nodes_per_depth[k] = node count at depth k (index 0 = root).
  std::vector<int64_t> nodes_per_depth;
  // Data points summarized per depth (cumulative counts, so depth 0 holds
  // everything ever inserted).
  std::vector<int64_t> points_per_depth;
  // Mean leaf depth, weighted by leaf count: a proxy for the resolution a
  // uniformly random prediction would get.
  double mean_leaf_depth = 0.0;
  // Fraction of nodes whose block average differs from their parent's by
  // less than 1% of the root average — "redundant" nodes the compressor
  // would evict first.
  double redundant_node_fraction = 0.0;
};

TreeStats ComputeTreeStats(const MemoryLimitedQuadtree& tree);

// Merges per-tree stats into one aggregate — how a sharded model (N
// independent trees striping one model space) reports itself through the
// same introspection shape. Counts add; mean_leaf_depth is leaf-weighted;
// redundant_node_fraction is node-weighted.
TreeStats MergeTreeStats(const std::vector<TreeStats>& parts);

// Multi-line human-readable dump of the stats.
std::string TreeStatsToString(const TreeStats& stats);

// Full structural dump (one line per node: depth, block, summary); intended
// for debugging small trees.
std::string DumpTree(const MemoryLimitedQuadtree& tree, int max_nodes = 200);

}  // namespace mlq

#endif  // MLQ_QUADTREE_TREE_STATS_H_
