#include "quadtree/shared_node_arena.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "obs/obs.h"

namespace mlq {

namespace {

bool IsVacant(const PooledNode& n) { return n.index_in_parent == kVacantSlot; }

}  // namespace

SharedNodeArena::SharedNodeArena(int fanout)
    : fanout_(fanout),
      slabs_(new std::atomic<PooledNode*>[kMaxSlabs]) {
  // 2 <= fanout <= 128 keeps every quadrant strictly below kVacantSlot and
  // guarantees blocks never straddle a slab (fanout divides kSlabSlots).
  assert(fanout_ >= 2 && fanout_ <= 128);
  for (size_t s = 0; s < kMaxSlabs; ++s) {
    slabs_[s].store(nullptr, std::memory_order_relaxed);
  }
}

SharedNodeArena::~SharedNodeArena() {
  for (size_t s = 0; s < num_slabs_; ++s) {
    delete[] slabs_[s].load(std::memory_order_relaxed);
  }
}

void SharedNodeArena::AppendSlabLocked() {
  assert(num_slabs_ < kMaxSlabs && "arena slab table exhausted");
  PooledNode* slab = new PooledNode[kSlabSlots];
  // Release pairs with the relaxed loads in node(): any thread that learns
  // a NodeIndex into this slab does so via the arena mutex or the owning
  // tree's lock, both of which order after this store.
  slabs_[num_slabs_].store(slab, std::memory_order_release);
  ++num_slabs_;
  const int64_t bytes =
      static_cast<int64_t>(num_slabs_ * kSlabSlots * sizeof(PooledNode));
  physical_bytes_.store(bytes, std::memory_order_relaxed);
  int64_t peak = peak_physical_bytes_.load(std::memory_order_relaxed);
  while (bytes > peak && !peak_physical_bytes_.compare_exchange_weak(
                             peak, bytes, std::memory_order_relaxed)) {
  }
}

NodeIndex SharedNodeArena::AllocateBlockLocked() {
  ++mutation_epoch_;
  if (free_head_ != kInvalidNodeIndex) {
    const NodeIndex base = free_head_;
    PooledNode& head = node(base);
    free_head_ = head.first_child;
    head.first_child = kInvalidNodeIndex;
    free_count_.fetch_sub(fanout_, std::memory_order_relaxed);
    return base;
  }
  const size_t bump = bump_.load(std::memory_order_relaxed);
  assert(bump + static_cast<size_t>(fanout_) < kInvalidNodeIndex);
  if (bump == num_slabs_ * kSlabSlots) AppendSlabLocked();
  const NodeIndex base = static_cast<NodeIndex>(bump);
  bump_.store(bump + static_cast<size_t>(fanout_), std::memory_order_relaxed);
  for (int q = 0; q < fanout_; ++q) MarkVacantSlot(node(base + q));
  return base;
}

NodeIndex SharedNodeArena::AllocateBlock() {
  std::lock_guard<std::mutex> lock(mutex_);
  return AllocateBlockLocked();
}

void SharedNodeArena::ReleaseBlock(NodeIndex base) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++mutation_epoch_;
  node(base).first_child = free_head_;
  free_head_ = base;
  free_count_.fetch_add(fanout_, std::memory_order_relaxed);
}

void SharedNodeArena::Reserve(size_t slots) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (num_slabs_ * kSlabSlots < slots && num_slabs_ < kMaxSlabs) {
    AppendSlabLocked();
  }
}

void SharedNodeArena::RegisterRoot(NodeIndex* root) {
  std::lock_guard<std::mutex> lock(mutex_);
  roots_.push_back(root);
}

void SharedNodeArena::UnregisterRoot(NodeIndex* root) {
  std::lock_guard<std::mutex> lock(mutex_);
  roots_.erase(std::remove(roots_.begin(), roots_.end(), root), roots_.end());
}

int64_t SharedNodeArena::ReleaseTree(NodeIndex root) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++mutation_epoch_;
  assert(node(root).index_in_parent == 0 && node(root).depth == 0);
  int64_t released = 0;
  std::vector<NodeIndex> block_stack;
  block_stack.push_back(root);  // A root occupies slot 0 of its block.
  while (!block_stack.empty()) {
    const NodeIndex base = block_stack.back();
    block_stack.pop_back();
    for (int q = 0; q < fanout_; ++q) {
      PooledNode& n = node(base + static_cast<NodeIndex>(q));
      if (n.index_in_parent != q) continue;
      if (n.first_child != kInvalidNodeIndex) {
        block_stack.push_back(n.first_child);
      }
      MarkVacantSlot(n);
      ++released;
    }
    node(base).first_child = free_head_;
    free_head_ = base;
    free_count_.fetch_add(fanout_, std::memory_order_relaxed);
  }
  live_.fetch_sub(released, std::memory_order_relaxed);
  return released;
}

SharedNodeArena::CompactionStats SharedNodeArena::Compact() {
  const bool obs_on = obs::Enabled();
  const int64_t t0 = obs_on ? obs::NowNs() : 0;
  std::lock_guard<std::mutex> lock(mutex_);
  CompactionStats stats;
  stats.physical_bytes_before = physical_bytes_.load(std::memory_order_relaxed);

  // Rewrite every registered tree into a fresh, dense slab sequence in
  // pre-order (descent) order. Slab arrays never move once allocated, so
  // references fetched from `new_node` stay valid across `alloc_block`.
  std::vector<PooledNode*> new_slabs;
  size_t new_bump = 0;
  auto new_node = [&new_slabs](size_t index) -> PooledNode& {
    return new_slabs[index >> kSlabShift][index & kSlabMask];
  };
  auto alloc_block = [&]() -> NodeIndex {
    if (new_bump == new_slabs.size() * kSlabSlots) {
      new_slabs.push_back(new PooledNode[kSlabSlots]);
    }
    const NodeIndex base = static_cast<NodeIndex>(new_bump);
    new_bump += static_cast<size_t>(fanout_);
    for (int q = 0; q < fanout_; ++q) MarkVacantSlot(new_node(base + q));
    ++stats.blocks_moved;
    return base;
  };

  std::vector<NodeIndex> stack;  // New-layout indices still to expand.
  for (NodeIndex* root : roots_) {
    const NodeIndex new_root = alloc_block();
    new_node(new_root) = node(*root);
    *root = new_root;
    stack.push_back(new_root);
    while (!stack.empty()) {
      const NodeIndex at = stack.back();
      stack.pop_back();
      const NodeIndex old_base = new_node(at).first_child;
      if (old_base == kInvalidNodeIndex) continue;
      const NodeIndex new_base = alloc_block();
      new_node(at).first_child = new_base;
      for (int q = 0; q < fanout_; ++q) {
        const PooledNode& old_child = node(old_base + static_cast<NodeIndex>(q));
        if (old_child.index_in_parent != q) continue;
        PooledNode& moved = new_node(new_base + static_cast<NodeIndex>(q));
        moved = old_child;
        moved.parent = at;
        stack.push_back(new_base + static_cast<NodeIndex>(q));
      }
    }
  }

  // Install the dense layout, drop the old slabs and the free-list.
  for (size_t s = 0; s < num_slabs_; ++s) {
    delete[] slabs_[s].load(std::memory_order_relaxed);
    slabs_[s].store(nullptr, std::memory_order_relaxed);
  }
  for (size_t s = 0; s < new_slabs.size(); ++s) {
    slabs_[s].store(new_slabs[s], std::memory_order_release);
  }
  num_slabs_ = new_slabs.size();
  bump_.store(new_bump, std::memory_order_relaxed);
  free_head_ = kInvalidNodeIndex;
  // Reserved blocks belong to the discarded layout, like the free-list.
  compact_reserve_.clear();
  free_count_.store(0, std::memory_order_relaxed);
  const int64_t bytes =
      static_cast<int64_t>(num_slabs_ * kSlabSlots * sizeof(PooledNode));
  physical_bytes_.store(bytes, std::memory_order_relaxed);
  peak_physical_bytes_.store(bytes, std::memory_order_relaxed);
  compactions_.fetch_add(1, std::memory_order_relaxed);

  stats.physical_bytes_after = bytes;
  stats.bytes_reclaimed =
      std::max<int64_t>(0, stats.physical_bytes_before - bytes);
  if (obs_on) {
    obs::CoreMetrics& core = obs::Core();
    core.arena_compactions.Inc();
    core.arena_compact_bytes_reclaimed.Inc(stats.bytes_reclaimed);
    const int64_t dur = obs::NowNs() - t0;
    core.arena_compact_ns.Record(dur);
    MLQ_TRACE_EVENT(obs::TraceEventType::kCompress, t0, dur,
                    static_cast<double>(stats.bytes_reclaimed),
                    static_cast<double>(stats.blocks_moved));
    obs::GlobalEventLog().Append(obs::EventKind::kArenaCompaction, "stw",
                                 static_cast<double>(stats.blocks_moved),
                                 static_cast<double>(stats.bytes_reclaimed));
  }
  return stats;
}

void SharedNodeArena::MoveBlockLocked(NodeIndex src, NodeIndex dest) {
  PooledNode* from = block(src);
  PooledNode* to = block(dest);
  // Wholesale block copy: vacant slots in a live block carry no links, so
  // copying them over the free block's stale state leaves dest clean.
  for (int q = 0; q < fanout_; ++q) to[q] = from[q];
  for (int q = 0; q < fanout_; ++q) {
    const PooledNode& n = to[q];
    if (n.index_in_parent != q) continue;
    // Re-point the moved node's children at the block's new home.
    if (n.first_child != kInvalidNodeIndex) {
      PooledNode* child_block = block(n.first_child);
      for (int cq = 0; cq < fanout_; ++cq) {
        if (child_block[cq].index_in_parent == cq) {
          child_block[cq].parent = dest + static_cast<NodeIndex>(q);
        }
      }
    }
    if (n.parent != kInvalidNodeIndex) {
      // Every live slot of a child block shares one parent; re-pointing it
      // per slot just rewrites the same value.
      node(n.parent).first_child = dest;
    } else {
      // A root block: patch the tree's registered root handle.
      for (NodeIndex* root : roots_) {
        if (*root == src + static_cast<NodeIndex>(q)) {
          *root = dest + static_cast<NodeIndex>(q);
        }
      }
    }
  }
  for (int q = 0; q < fanout_; ++q) MarkVacantSlot(from[q]);
}

SharedNodeArena::CompactStepStats SharedNodeArena::CompactStep(
    int64_t budget_slots) {
  std::lock_guard<std::mutex> lock(mutex_);
  CompactStepStats stats;
  const int64_t bytes_before = physical_bytes_.load(std::memory_order_relaxed);

  // The reserve describes the layout it was popped from: if any block was
  // allocated or released since the previous step, hand the reserved blocks
  // back to the free-list and rebuild from scratch. (free_count_ covers
  // both structures, so the hand-back moves nothing in the accounting.)
  if (reserve_epoch_ != mutation_epoch_ && !compact_reserve_.empty()) {
    for (const NodeIndex base : compact_reserve_) {
      node(base).first_child = free_head_;
      free_head_ = base;
    }
    compact_reserve_.clear();
  }

  // A block is reclaimable iff every slot carries the vacancy marker; a
  // freshly filled destination reads as live automatically.
  auto block_vacant = [this](int64_t base) {
    const PooledNode* b = block(static_cast<NodeIndex>(base));
    for (int q = 0; q < fanout_; ++q) {
      if (b[q].index_in_parent != kVacantSlot) return false;
    }
    return true;
  };

  const int64_t max_moves =
      std::max<int64_t>(1, budget_slots / static_cast<int64_t>(fanout_));
  // Free-list pops and bump-trim absorptions are budgeted alongside moves,
  // so a step's pause is proportional to budget_slots no matter how long
  // the free-list or how wide the vacant tail.
  const int64_t pop_budget = 4 * max_moves;
  int64_t pops = 0;
  int64_t absorbed = 0;
  bool absorb_budget_hit = false;

  // Block bases this step relocated out of; the bump trim may pass them.
  std::unordered_set<NodeIndex> moved_from;
  int64_t top = static_cast<int64_t>(bump_.load(std::memory_order_relaxed)) -
                static_cast<int64_t>(fanout_);

  // Advances `top` past blocks this epoch has fully processed: blocks
  // moved out by this step and reserved free blocks. A vacant block whose
  // free-list entry has not been popped yet stops the trim — the bump may
  // not pass a block that is still reachable from the free-list.
  auto trim = [&]() {
    while (top >= 0) {
      const auto base = static_cast<NodeIndex>(top);
      if (moved_from.count(base) > 0) {
        top -= fanout_;
        continue;
      }
      const auto it = compact_reserve_.find(base);
      if (it != compact_reserve_.end()) {
        if (absorbed == pop_budget) {
          absorb_budget_hit = true;
          break;
        }
        compact_reserve_.erase(it);
        free_count_.fetch_sub(fanout_, std::memory_order_relaxed);
        ++absorbed;
        top -= fanout_;
        continue;
      }
      break;
    }
  };

  while (true) {
    trim();
    if (absorb_budget_hit || top < 0) break;
    if (stats.blocks_moved == max_moves || pops == pop_budget) break;
    const auto top_base = static_cast<NodeIndex>(top);
    if (!block_vacant(top) && !compact_reserve_.empty() &&
        *compact_reserve_.begin() < top_base) {
      // Live top block, and a strictly lower hole to put it in.
      const NodeIndex dest = *compact_reserve_.begin();
      compact_reserve_.erase(compact_reserve_.begin());
      free_count_.fetch_sub(fanout_, std::memory_order_relaxed);
      MoveBlockLocked(top_base, dest);
      moved_from.insert(top_base);
      ++stats.blocks_moved;
      continue;
    }
    // Either the top block is free but its list entry has not surfaced
    // yet, or no usable destination is reserved. Pop one more free-list
    // entry into the reserve; every pop shrinks the list, so the blocking
    // entry surfaces within a bounded number of steps.
    if (free_head_ == kInvalidNodeIndex) break;
    const NodeIndex base = free_head_;
    free_head_ = node(base).first_child;
    node(base).first_child = kInvalidNodeIndex;
    compact_reserve_.insert(base);
    ++pops;
  }

  // Install the shrunk extent and drop every slab past the new bump.
  const auto new_bump = static_cast<size_t>(top + fanout_);
  bump_.store(new_bump, std::memory_order_relaxed);
  const size_t needed_slabs = (new_bump + kSlabSlots - 1) >> kSlabShift;
  for (size_t s = needed_slabs; s < num_slabs_; ++s) {
    delete[] slabs_[s].load(std::memory_order_relaxed);
    slabs_[s].store(nullptr, std::memory_order_relaxed);
  }
  num_slabs_ = needed_slabs;
  const int64_t bytes =
      static_cast<int64_t>(num_slabs_ * kSlabSlots * sizeof(PooledNode));
  physical_bytes_.store(bytes, std::memory_order_relaxed);
  stats.bytes_reclaimed = std::max<int64_t>(0, bytes_before - bytes);
  stats.done = free_head_ == kInvalidNodeIndex && compact_reserve_.empty();
  reserve_epoch_ = mutation_epoch_;
  if (stats.done &&
      (stats.blocks_moved > 0 || absorbed > 0 || stats.bytes_reclaimed > 0)) {
    // A completed pass that actually did work counts as one compaction and
    // resets the high-water mark, exactly like Compact().
    peak_physical_bytes_.store(bytes, std::memory_order_relaxed);
    compactions_.fetch_add(1, std::memory_order_relaxed);
  }
  if (obs::Enabled() && stats.bytes_reclaimed > 0) {
    obs::Core().arena_compact_bytes_reclaimed.Inc(stats.bytes_reclaimed);
    obs::GlobalEventLog().Append(obs::EventKind::kArenaCompaction, "step",
                                 static_cast<double>(stats.blocks_moved),
                                 static_cast<double>(stats.bytes_reclaimed));
  }
  return stats;
}

bool SharedNodeArena::CheckConsistency(std::string* error) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  const size_t slots = bump_.load(std::memory_order_relaxed);
  if (slots % static_cast<size_t>(fanout_) != 0) {
    return fail("arena size is not a multiple of the fanout");
  }
  // Collect free-listed block bases, guarding against cycles.
  std::unordered_set<NodeIndex> free_blocks;
  const size_t max_blocks = slots / static_cast<size_t>(fanout_);
  for (NodeIndex base = free_head_; base != kInvalidNodeIndex;
       base = node(base).first_child) {
    if (base >= slots || base % fanout_ != 0) {
      return fail("free-list entry is not a valid block base");
    }
    if (!free_blocks.insert(base).second || free_blocks.size() > max_blocks) {
      return fail("free-list cycle detected");
    }
  }
  // Blocks parked in the incremental-compaction reserve are free too: they
  // still count toward free_count_ and must stay fully vacant.
  for (const NodeIndex base : compact_reserve_) {
    if (base >= slots || base % fanout_ != 0) {
      return fail("reserved block is not a valid block base");
    }
    if (!free_blocks.insert(base).second) {
      return fail("reserved block is also on the free-list");
    }
  }
  if (free_count_.load(std::memory_order_relaxed) !=
      static_cast<int64_t>(free_blocks.size()) * fanout_) {
    return fail("free_count does not match the free-list");
  }
  int64_t live_seen = 0;
  for (size_t block = 0; block < slots; block += static_cast<size_t>(fanout_)) {
    const NodeIndex base = static_cast<NodeIndex>(block);
    const bool in_free_list = free_blocks.count(base) > 0;
    for (int q = 0; q < fanout_; ++q) {
      const NodeIndex slot = base + static_cast<NodeIndex>(q);
      const PooledNode& n = node(slot);
      if (IsVacant(n)) {
        if (n.summary.count != 0 || n.num_children != 0) {
          return fail("vacant slot holds node state");
        }
        if (!(q == 0 && in_free_list) && n.first_child != kInvalidNodeIndex) {
          return fail("vacant slot has a dangling child link");
        }
        continue;
      }
      if (in_free_list) return fail("free-listed block holds a live node");
      if (n.index_in_parent != q) {
        return fail("slot quadrant does not match its block offset");
      }
      ++live_seen;
      if (n.parent != kInvalidNodeIndex) {
        const PooledNode& p = node(n.parent);
        if (p.first_child != base) {
          return fail("child slot not reachable from its parent");
        }
        if (n.depth != p.depth + 1) {
          return fail("child depth is not parent depth + 1");
        }
      }
      if (n.first_child != kInvalidNodeIndex) {
        if (n.first_child % fanout_ != 0 ||
            static_cast<size_t>(n.first_child) >= slots) {
          return fail("child-block base is not block-aligned");
        }
        int present = 0;
        for (int cq = 0; cq < fanout_; ++cq) {
          const PooledNode& c = node(n.first_child + cq);
          if (c.index_in_parent == cq) {
            if (c.parent != slot) return fail("child has a stale parent link");
            ++present;
          }
        }
        if (present != n.num_children) {
          return fail("num_children does not match the child block");
        }
        if (present == 0) return fail("empty child block was not recycled");
      } else if (n.num_children != 0) {
        return fail("leaf node reports children");
      }
    }
  }
  if (live_seen != live_.load(std::memory_order_relaxed)) {
    return fail("live_count does not match the arena contents");
  }
  return true;
}

}  // namespace mlq
