#ifndef MLQ_QUADTREE_QUADTREE_NODE_H_
#define MLQ_QUADTREE_QUADTREE_NODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"

namespace mlq {

// One block of the memory-limited quadtree.
//
// A node stores only the summary triple of the data points that map into
// its block (Section 4.1) plus tree-structure bookkeeping. Children are
// kept in a sparse vector sorted by child index, since with d dimensions a
// node has up to 2^d children but most are absent in practice (empty blocks
// are not materialized).
class QuadtreeNode {
 public:
  QuadtreeNode(QuadtreeNode* parent, uint8_t index_in_parent, int depth)
      : parent_(parent),
        index_in_parent_(index_in_parent),
        depth_(static_cast<uint8_t>(depth)) {}

  QuadtreeNode(const QuadtreeNode&) = delete;
  QuadtreeNode& operator=(const QuadtreeNode&) = delete;

  const SummaryTriple& summary() const { return summary_; }
  SummaryTriple& mutable_summary() { return summary_; }

  QuadtreeNode* parent() const { return parent_; }
  uint8_t index_in_parent() const { return index_in_parent_; }
  int depth() const { return depth_; }

  bool IsLeaf() const { return children_.empty(); }
  int num_children() const { return static_cast<int>(children_.size()); }

  // Child with the given quadrant index, or nullptr when that block is
  // empty. O(#children) linear scan over the sparse vector, which is at
  // most 2^d entries and in practice a handful.
  QuadtreeNode* Child(int index) const;

  // Creates (and returns) the child for `index`. Must not already exist.
  // Memory accounting is the tree's job, not the node's.
  QuadtreeNode* CreateChild(int index);

  // Detaches and destroys the child with the given index. Must exist.
  void RemoveChild(int index);

  // SSEG(b) = C(b) * (AVG(parent) - AVG(b))^2 (Eq. 9): the increase in the
  // tree's total expected prediction error if this node is discarded.
  // Requires a parent.
  double Sseg() const;

  // Takes ownership of an existing subtree as the child at `index`,
  // re-parenting its root and shifting every depth in the subtree down one
  // level. Used when the tree grows a new root above the old one
  // (model-space expansion for UDFs with unknown argument ranges).
  void AdoptChild(int index, std::unique_ptr<QuadtreeNode> child);

  // Iteration support for traversals (read-only view of the child list,
  // sorted by quadrant index).
  struct ChildEntry {
    uint8_t index;
    std::unique_ptr<QuadtreeNode> node;
  };
  const std::vector<ChildEntry>& children() const { return children_; }

  // Insertion tick at which this node last lay on an insert path; drives
  // the optional recency-aware compression (MlqConfig::recency_half_life).
  int64_t last_touch() const { return last_touch_; }
  void set_last_touch(int64_t tick) { last_touch_ = tick; }

 private:
  SummaryTriple summary_;
  QuadtreeNode* parent_;
  std::vector<ChildEntry> children_;
  int64_t last_touch_ = 0;
  uint8_t index_in_parent_;
  uint8_t depth_;
};

}  // namespace mlq

#endif  // MLQ_QUADTREE_QUADTREE_NODE_H_
