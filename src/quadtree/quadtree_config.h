#ifndef MLQ_QUADTREE_QUADTREE_CONFIG_H_
#define MLQ_QUADTREE_QUADTREE_CONFIG_H_

#include <cstdint>

namespace mlq {

// Insertion strategies of Section 4.4. Eager partitions to the maximum
// depth lambda on every insertion (th_SSE = 0); lazy partitions a leaf only
// once its SSE reaches th_SSE = alpha * SSE(root) (Eq. 7), which delays
// hitting the memory limit and therefore compresses less often.
enum class InsertionStrategy {
  kEager,
  kLazy,
};

// Which leaves compression evicts first. kSseg is the paper's Eq. 9; the
// other two ablate its factors (bench/ablation_eviction): kCountOnly keeps
// only the access-frequency proxy C(b), kRandom keeps neither.
enum class EvictionPolicy {
  kSseg,       // C(b) * (AVG(parent) - AVG(b))^2 — the paper.
  kCountOnly,  // C(b): evict rarely-hit blocks regardless of their values.
  kRandom,     // Uniform-random leaf, the degenerate control.
};

// Tuning knobs of the memory-limited quadtree. Defaults are the values the
// paper uses throughout Section 5.1 (beta = 1 is the CPU-cost setting;
// disk-IO experiments pass beta = 10).
struct MlqConfig {
  InsertionStrategy strategy = InsertionStrategy::kEager;

  // lambda: maximum tree depth (root is depth 0).
  int max_depth = 6;

  // alpha: scale factor applied to SSE(root) to obtain the lazy insertion
  // threshold th_SSE. Only meaningful for the lazy strategy, and only after
  // the first compression (before that, lazy behaves like eager).
  double alpha = 0.05;

  // gamma: minimum fraction of the memory budget each compression frees.
  // The paper's 0.1% frees roughly one node per compression.
  double gamma = 0.001;

  // beta: minimum number of data points a node needs before its average is
  // trusted at prediction time (Fig. 3).
  int64_t beta = 1;

  // M_max: strict memory budget in (logical) bytes; 1.8 KB in the paper.
  int64_t memory_limit_bytes = 1800;

  // Extension beyond the paper (its "future work": ordinal arguments with
  // unknown ranges): when true, a data point outside the model space grows
  // the space by repeatedly doubling the root block toward the point
  // (classic quadtree root expansion) instead of clamping the point onto
  // the boundary. max_depth grows with each expansion so the finest block
  // resolution is preserved.
  bool auto_expand = false;

  // Which eviction key compression uses; kSseg is the paper's algorithm,
  // the others exist for the ablation study.
  EvictionPolicy eviction_policy = EvictionPolicy::kSseg;

  // Extension beyond the paper: recency-aware compression. Eq. 9's SSEG
  // never decays, so structure from a long-gone workload phase is never
  // evicted in favour of the current phase (measured in
  // bench/ablation_drift). With a positive half-life H (in insertions),
  // compression ranks leaves by SSEG * 2^(-(age in insertions) / H), so
  // long-unvisited blocks eventually yield their memory. 0 disables the
  // decay (the paper's exact behaviour).
  double recency_half_life = 0.0;

  // Extension beyond the paper: windowed (exponential-decay) summaries.
  // With a positive half-life H (in DECAY EPOCHS — a logical clock the
  // serving layer advances, e.g. one epoch per maintenance tick), a node's
  // summary triple is aged by 2^(-(epochs since last touch) / H) before new
  // feedback merges in, so stale regions stop dominating the average and
  // the model re-learns after workload drift. Aging is applied LAZILY at
  // touch time on the insertion path (each node stores the epoch it was
  // last decayed to); predictions never mutate the tree and instead weigh
  // the node's count by the same factor when choosing the descent depth.
  // The materialization preserves AVG exactly (sum, count and
  // sum-of-squares shrink by one common factor, count rounded to the
  // nearest integer), so predictions stay inside the observed value range.
  // 0 disables decay entirely (the paper's exact behaviour, bit-identical
  // serialized bytes and predictions). Distinct from recency_half_life,
  // which only damps the COMPRESSION eviction key; the two compose.
  double decay_half_life = 0.0;
};

// Logical size accounting, shared with DESIGN.md Section 3: a node is
// charged for its summary triple (sum 8B, count 4B, sum-of-squares 8B),
// a child-presence bitmap (2 bytes covers d <= 4) and a depth/flags byte
// pair; every materialized child additionally costs its parent one packed
// 4-byte child reference (nodes live in a pool, so 32-bit offsets suffice).
// This mirrors how a DBMS would serialize the model into its catalog and is
// what the 1.8 KB budget of Section 5.1 is charged against.
inline constexpr int64_t kNodeBaseBytes = 8 + 4 + 8 + 2 + 2;  // 24
inline constexpr int64_t kChildSlotBytes = 4;

// Bytes charged when materializing one non-root node (its own base cost
// plus the slot it occupies in its parent).
inline constexpr int64_t kNonRootNodeBytes = kNodeBaseBytes + kChildSlotBytes;

}  // namespace mlq

#endif  // MLQ_QUADTREE_QUADTREE_CONFIG_H_
