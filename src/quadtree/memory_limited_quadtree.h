#ifndef MLQ_QUADTREE_MEMORY_LIMITED_QUADTREE_H_
#define MLQ_QUADTREE_MEMORY_LIMITED_QUADTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/memory_budget.h"
#include "common/timer.h"
#include "quadtree/node_pool.h"
#include "quadtree/quadtree_config.h"

namespace mlq {

// One feedback sample: a model point and the cost observed there. The
// currency of the batched feedback pipeline (tree InsertBatch → model
// ObserveBatch → catalog RecordExecutionBatch) and of the sharded feedback
// queues.
struct Observation {
  Point point;
  double value = 0.0;
};

// Result of a point prediction (Fig. 3 of the paper).
struct Prediction {
  // Predicted cost: the average stored in the chosen node.
  double value = 0.0;
  // Sample standard deviation of the costs summarized in the chosen node
  // (sqrt(SSE/C), from the stored sum-of-squares): a confidence measure an
  // optimizer can use for risk-aware planning. 0 for a single point.
  double stddev = 0.0;
  // Depth of the node the prediction came from (0 = root).
  int depth = 0;
  // Number of data points summarized in that node.
  int64_t count = 0;
  // False when even the root had fewer than beta points (including the
  // empty-tree case, where value is 0): the caller is on its own.
  bool reliable = false;
};

// Aggregate operation counters, exposed for the modeling-cost experiments
// (Experiment 2 / Fig. 10).
struct QuadtreeCounters {
  int64_t insertions = 0;
  int64_t compressions = 0;
  int64_t nodes_created = 0;
  int64_t nodes_freed = 0;
  double insert_seconds = 0.0;    // Total time inside Insert, compression excluded.
  double compress_seconds = 0.0;  // Total time inside Compress.
};

// The memory-limited quadtree (MLQ) of Section 4: a d-dimensional quadtree
// over a fixed model space, storing a summary triple per block, supporting
// beta-guided prediction, eager/lazy insertion and SSEG-guided compression
// under a strict logical memory budget.
//
// Nodes live in a contiguous arena (NodePool) allocated in 2^d-slot child
// blocks: the child for quadrant q is always at slot first_child + q, so a
// prediction descent does one indexed load per level into one
// cache-friendly vector instead of chasing heap pointers, and compression
// recycles whole blocks through the pool's free-list. The logical memory
// accounting (what the budget is charged) is derived exactly from the
// pool's live-node count.
//
// Thread-compatible; not thread-safe (one model instance per UDF and cost
// kind, as the paper assumes).
class MemoryLimitedQuadtree {
 public:
  // `space` is the full model-variable space (the root block). Its
  // dimensionality fixes d; 2^d children per node.
  MemoryLimitedQuadtree(const Box& space, const MlqConfig& config);

  // Same, allocating nodes from a shared arena (fanout must equal 2^d)
  // instead of a private one. The tree registers its root with the arena so
  // SharedNodeArena::Compact() can relocate it, and releases its blocks
  // back to the shared free-list on destruction. Logical budgeting is
  // unchanged — only the physical slabs are shared.
  MemoryLimitedQuadtree(const Box& space, const MlqConfig& config,
                        std::shared_ptr<SharedNodeArena> arena);

  ~MemoryLimitedQuadtree();

  MemoryLimitedQuadtree(const MemoryLimitedQuadtree&) = delete;
  MemoryLimitedQuadtree& operator=(const MemoryLimitedQuadtree&) = delete;

  const Box& space() const { return space_; }
  const MlqConfig& config() const { return config_; }

  // Predicts the cost at `point` using the configured beta: the average of
  // the lowest node containing the point with count >= beta.
  Prediction Predict(const Point& point) const;

  // Same, with an explicit beta (the paper uses beta=1 for CPU and beta=10
  // for disk-IO predictions from the same tree shape).
  Prediction PredictWithBeta(const Point& point, int64_t beta) const;

  // Batched prediction: out[i] = Predict(points[i]), with the per-call
  // observability overhead amortized over the whole batch (one span, one
  // counter bump). `out.size()` must equal `points.size()`. The pooled
  // layout makes consecutive descents hit the same cache lines, so this is
  // the fast path for optimizers that cost many candidate points at once.
  void PredictBatch(std::span<const Point> points,
                    std::span<Prediction> out) const;
  void PredictBatchWithBeta(std::span<const Point> points,
                            std::span<Prediction> out, int64_t beta) const;

  // Inserts the observed cost `value` at `point` (Fig. 4), compressing
  // first whenever materializing a new node would exceed the memory budget
  // (Fig. 6). Points outside the model space are clamped onto its boundary,
  // mirroring an optimizer that saturates out-of-range model variables —
  // unless config.auto_expand is set, in which case the space grows to
  // cover the point first (see ExpandToInclude).
  void Insert(const Point& point, double value);

  // Batched insertion: semantically identical to calling Insert per
  // observation in order — same descents, same per-point compression
  // triggers, bit-identical tree — but the per-call overhead (wall timers,
  // observability hooks, the path scratch vector) is paid once per batch.
  // The serving-side amortization lever that PredictBatch is for reads.
  void InsertBatch(std::span<const Observation> batch);

  // Gather form: inserts all[indices[0]], all[indices[1]], ... in that
  // order without materializing a contiguous copy of the selected
  // observations (an Observation copy heap-allocates its Point). Same
  // bit-identity guarantee as InsertBatch. The sharded model uses this to
  // apply one caller batch as per-shard index runs.
  void InsertBatch(std::span<const Observation> all,
                   std::span<const uint32_t> indices);

  // Grows the model space until it covers `point` by repeatedly doubling
  // the root block toward the point: a new root is created whose children
  // include the old root, depths shift down one level, and max_depth grows
  // by one so leaf resolution is unchanged. No-op for covered points.
  // Extension beyond the paper (unknown argument ranges).
  void ExpandToInclude(const Point& point);

  // Forces one compression pass (normally triggered internally). Public so
  // tests and ablations can exercise compression in isolation.
  void Compress();

  // Re-targets the tree's logical byte budget (clamped to at least the
  // root's own charge). Shrinking below the current footprint runs
  // SSEG-guided compression passes until the tree fits — the same eviction
  // order a budget-pressure compression would have used, so the surviving
  // summaries are exactly the ones compression would have kept. Growing
  // only raises the limit; the insertion path fills the headroom. The new
  // limit is also written into config().memory_limit_bytes so serialized
  // snapshots carry the governed budget. Returns the applied (clamped)
  // limit.
  int64_t SetMemoryLimit(int64_t limit_bytes);

  // --- Windowed-summary decay (see MlqConfig::decay_half_life) -------------

  // True when this tree ages its summaries (config.decay_half_life > 0).
  bool decay_enabled() const { return config_.decay_half_life > 0.0; }

  // The tree's global decay epoch. Nodes age lazily: a node's summary is
  // only re-aged to the current epoch when the insertion path next touches
  // it, so advancing the epoch is O(1) regardless of tree size.
  uint32_t decay_epoch() const { return decay_epoch_; }

  // Advances the global decay epoch by `epochs` (the serving layer's
  // logical forgetting clock — typically one per maintenance tick, more
  // after a detected drift). No-op when decay is disabled or epochs <= 0.
  void AdvanceDecayEpoch(int64_t epochs = 1);

  // Current lazy-insertion partitioning threshold th_SSE (Eq. 7): zero for
  // the eager strategy and before the first compression, alpha * SSE(root)
  // afterwards.
  double CurrentSseThreshold() const;

  // --- Introspection -------------------------------------------------------

  NodeView root() const { return NodeView(&pool_, root_); }
  const NodePool& pool() const { return pool_; }
  int64_t num_nodes() const { return pool_.live_count(); }
  int64_t memory_used() const { return budget_.used(); }
  int64_t memory_limit() const { return budget_.limit(); }
  int64_t memory_peak() const { return budget_.peak(); }
  // Bytes of process memory the node arena actually occupies (backing
  // capacity, including free-listed slots) — the physical complement of the
  // logical catalog-byte accounting above.
  int64_t arena_bytes() const { return pool_.PhysicalCapacityBytes(); }
  const QuadtreeCounters& counters() const { return counters_; }

  // TSSENC(qt) of Eq. 6: the sum over all non-full blocks of their SSENC.
  // SSENC of a block is estimated from the stored summaries as
  // SSE(b) - sum_children SSE(child) - sum_children SSEG(child); exact for
  // the quantities the tree maintains. O(num_nodes); used by tests and the
  // compression-quality ablation, not on the hot path.
  double TotalSsenc() const;

  // Walks the whole tree calling `fn` on every node (pre-order, children in
  // ascending quadrant order).
  void ForEachNode(const std::function<void(const NodeView&, const Box&)>& fn) const;

  // Validates structural invariants (child counts vs parent counts, depth
  // bounds, memory accounting derived from the pool, sorted child chains,
  // pool free-list integrity). Returns true when consistent; otherwise
  // false with a description in `error`.
  bool CheckInvariants(std::string* error) const;

  // True once any compression has run (the lazy strategy keys th_SSE off
  // this, Section 4.4); exposed for catalog serialization.
  bool compressed_once() const { return compressed_once_; }

 private:
  // Catalog persistence rebuilds trees node by node (model/serialization.h).
  friend std::unique_ptr<MemoryLimitedQuadtree> DeserializeQuadtree(
      const std::vector<uint8_t>& bytes,
      std::shared_ptr<SharedNodeArena> arena, std::string* error);

  // Logical catalog bytes for `nodes` materialized nodes: one root charge
  // plus a base + parent-slot charge per non-root node. This is exact, not
  // incremental: it is recomputed from the pool's live count after every
  // structural change, so the accounting can never drift.
  static int64_t LogicalBytesFor(int64_t nodes) {
    return kNodeBaseBytes + (nodes - 1) * kNonRootNodeBytes;
  }
  void SyncBudget() { budget_.SetUsed(LogicalBytesFor(pool_.live_count())); }

  // Single-point descent without observability hooks; shared by Predict and
  // PredictBatch.
  Prediction PredictInternal(const Point& point, int64_t beta) const;

  // One insertion descent without timers or observability hooks; shared by
  // Insert and InsertBatch. `path` is caller-provided scratch for the
  // compression-protected insertion path. The point/value must already have
  // passed the finiteness screen.
  void InsertOne(const Point& point, double value,
                 std::vector<NodeIndex>& path);

  // Attempts to materialize child `quadrant` of `parent`, compressing if
  // the budget requires it. Returns kInvalidNodeIndex when compression
  // could not free enough memory (the insert then stops partitioning).
  // `protected_path` holds the nodes on the current insertion path, which
  // compression must not delete.
  NodeIndex TryCreateChild(NodeIndex parent, int quadrant,
                           const std::vector<NodeIndex>& protected_path);

  // Compression pass (Fig. 6) that never removes nodes in `protected_path`.
  void CompressInternal(const std::vector<NodeIndex>& protected_path);

  // 2^(-(current epoch - node_epoch) / decay_half_life): the factor a
  // node's summary weight has decayed by since it was last aged. Requires
  // decay_enabled() and node_epoch <= decay_epoch_.
  double DecayFactor(uint32_t node_epoch) const;

  // Ages `node`'s summary to the current epoch (insert path only; the
  // predict path never mutates). AVG-preserving: count is rounded to the
  // nearest integer and sum/sum-of-squares scale by the same exact ratio,
  // so the average is unchanged and SSE scales by the ratio (stays >= 0).
  // When rounding would leave the count unchanged the node is left
  // untouched — including its epoch stamp, so the un-applied age is not
  // forgotten but re-applied (accumulated) on a later touch.
  void MaterializeDecay(PooledNode& node);

  Box space_;
  MlqConfig config_;
  MemoryBudget budget_;
  NodePool pool_;  // Constructed with fanout 2^dims.
  NodeIndex root_ = kInvalidNodeIndex;
  bool compressed_once_ = false;
  uint32_t decay_epoch_ = 0;
  QuadtreeCounters counters_;
};

}  // namespace mlq

#endif  // MLQ_QUADTREE_MEMORY_LIMITED_QUADTREE_H_
