#include "optimizer/predicate_ordering.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace mlq {

double PredicateEstimate::Rank() const {
  // Guard zero-cost predicates: they should always run first, which a
  // -infinity rank achieves without dividing by zero.
  if (cost_per_tuple <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return (selectivity - 1.0) / cost_per_tuple;
}

double PredicateEstimate::RiskAdjustedCost(double k) const {
  if (k <= 0.0 || cost_stddev <= 0.0) return cost_per_tuple;
  const double denom =
      std::sqrt(static_cast<double>(support > 0 ? support : 1));
  return cost_per_tuple + k * cost_stddev / denom;
}

double PredicateEstimate::RiskRank(double k) const {
  const double cost = RiskAdjustedCost(k);
  if (cost <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return (selectivity - 1.0) / cost;
}

double SequenceCostPerTuple(std::span<const PredicateEstimate> predicates,
                            std::span<const int> order) {
  assert(order.size() == predicates.size());
  double cost = 0.0;
  double pass_probability = 1.0;
  for (int index : order) {
    const PredicateEstimate& p = predicates[static_cast<size_t>(index)];
    cost += pass_probability * p.cost_per_tuple;
    pass_probability *= p.selectivity;
  }
  return cost;
}

double RiskSequenceCostPerTuple(std::span<const PredicateEstimate> predicates,
                                std::span<const int> order, double k) {
  assert(order.size() == predicates.size());
  double cost = 0.0;
  double pass_probability = 1.0;
  for (int index : order) {
    const PredicateEstimate& p = predicates[static_cast<size_t>(index)];
    cost += pass_probability * p.RiskAdjustedCost(k);
    pass_probability *= p.selectivity;
  }
  return cost;
}

OrderingResult OrderPredicates(std::span<const PredicateEstimate> predicates) {
  OrderingResult result;
  result.order.resize(predicates.size());
  std::iota(result.order.begin(), result.order.end(), 0);
  std::stable_sort(result.order.begin(), result.order.end(),
                   [&predicates](int a, int b) {
                     return predicates[static_cast<size_t>(a)].Rank() <
                            predicates[static_cast<size_t>(b)].Rank();
                   });
  result.expected_cost_per_tuple = SequenceCostPerTuple(predicates, result.order);
  result.risk_cost_per_tuple = result.expected_cost_per_tuple;
  return result;
}

namespace {

// One partial ordering in the beam: the prefix chosen so far, which inputs
// it has consumed, the accumulated risk-adjusted cost and the probability a
// tuple survives the prefix.
struct BeamState {
  std::vector<int> prefix;
  uint64_t used_mask = 0;
  double risk_cost = 0.0;
  double pass_probability = 1.0;
};

}  // namespace

OrderingResult OrderPredicatesRisk(
    std::span<const PredicateEstimate> predicates, const RiskPolicy& policy) {
  // k <= 0 must reproduce the classical ordering bit-for-bit so existing
  // callers see zero behavior change with the default policy.
  if (policy.k <= 0.0 || predicates.empty()) {
    return OrderPredicates(predicates);
  }

  const size_t n = predicates.size();
  const size_t beam_width =
      static_cast<size_t>(std::max(policy.beam_width, 1));

  // Beam search over ordering prefixes scored by risk-adjusted sequence
  // cost. The used_mask bounds us to 64 predicates — far beyond any
  // realistic conjunctive chain; beyond that, fall back to a plain
  // risk-rank sort (greedy, still variance-aware).
  if (n > 64) {
    OrderingResult result;
    result.order.resize(n);
    std::iota(result.order.begin(), result.order.end(), 0);
    std::stable_sort(result.order.begin(), result.order.end(),
                     [&predicates, &policy](int a, int b) {
                       return predicates[static_cast<size_t>(a)].RiskRank(
                                  policy.k) <
                              predicates[static_cast<size_t>(b)].RiskRank(
                                  policy.k);
                     });
    result.expected_cost_per_tuple =
        SequenceCostPerTuple(predicates, result.order);
    result.risk_cost_per_tuple =
        RiskSequenceCostPerTuple(predicates, result.order, policy.k);
    return result;
  }

  std::vector<BeamState> beam(1);
  beam.front().prefix.reserve(n);
  for (size_t depth = 0; depth < n; ++depth) {
    std::vector<BeamState> next;
    next.reserve(beam.size() * (n - depth));
    for (const BeamState& state : beam) {
      for (size_t i = 0; i < n; ++i) {
        if (state.used_mask & (uint64_t{1} << i)) continue;
        const PredicateEstimate& p = predicates[i];
        BeamState extended = state;
        extended.prefix.push_back(static_cast<int>(i));
        extended.used_mask |= uint64_t{1} << i;
        extended.risk_cost +=
            state.pass_probability * p.RiskAdjustedCost(policy.k);
        extended.pass_probability *= p.selectivity;
        next.push_back(std::move(extended));
      }
    }
    // Prune to the beam_width cheapest prefixes. Ties break toward the
    // lexicographically smaller prefix (stable input order), keeping the
    // search deterministic.
    if (next.size() > beam_width) {
      std::stable_sort(next.begin(), next.end(),
                       [](const BeamState& a, const BeamState& b) {
                         return a.risk_cost < b.risk_cost;
                       });
      next.resize(beam_width);
    }
    beam = std::move(next);
  }

  const BeamState* best = &beam.front();
  for (const BeamState& state : beam) {
    if (state.risk_cost < best->risk_cost) best = &state;
  }

  OrderingResult result;
  result.order = best->prefix;
  result.expected_cost_per_tuple =
      SequenceCostPerTuple(predicates, result.order);
  result.risk_cost_per_tuple = best->risk_cost;
  return result;
}

double WorstSequenceCostPerTuple(
    std::span<const PredicateEstimate> predicates) {
  std::vector<int> order(predicates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&predicates](int a, int b) {
    return predicates[static_cast<size_t>(a)].Rank() >
           predicates[static_cast<size_t>(b)].Rank();
  });
  return SequenceCostPerTuple(predicates, order);
}

}  // namespace mlq
