#include "optimizer/predicate_ordering.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace mlq {

double PredicateEstimate::Rank() const {
  // Guard zero-cost predicates: they should always run first, which a
  // -infinity rank achieves without dividing by zero.
  if (cost_per_tuple <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return (selectivity - 1.0) / cost_per_tuple;
}

double SequenceCostPerTuple(std::span<const PredicateEstimate> predicates,
                            std::span<const int> order) {
  assert(order.size() == predicates.size());
  double cost = 0.0;
  double pass_probability = 1.0;
  for (int index : order) {
    const PredicateEstimate& p = predicates[static_cast<size_t>(index)];
    cost += pass_probability * p.cost_per_tuple;
    pass_probability *= p.selectivity;
  }
  return cost;
}

OrderingResult OrderPredicates(std::span<const PredicateEstimate> predicates) {
  OrderingResult result;
  result.order.resize(predicates.size());
  std::iota(result.order.begin(), result.order.end(), 0);
  std::stable_sort(result.order.begin(), result.order.end(),
                   [&predicates](int a, int b) {
                     return predicates[static_cast<size_t>(a)].Rank() <
                            predicates[static_cast<size_t>(b)].Rank();
                   });
  result.expected_cost_per_tuple = SequenceCostPerTuple(predicates, result.order);
  return result;
}

double WorstSequenceCostPerTuple(
    std::span<const PredicateEstimate> predicates) {
  std::vector<int> order(predicates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&predicates](int a, int b) {
    return predicates[static_cast<size_t>(a)].Rank() >
           predicates[static_cast<size_t>(b)].Rank();
  });
  return SequenceCostPerTuple(predicates, order);
}

}  // namespace mlq
