#ifndef MLQ_OPTIMIZER_PREDICATE_ORDERING_H_
#define MLQ_OPTIMIZER_PREDICATE_ORDERING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mlq {

// One UDF predicate in a conjunctive WHERE clause, as the optimizer sees
// it: an estimated per-tuple evaluation cost (from a CostModel) and an
// estimated selectivity. This is the motivating use of UDF cost models in
// the paper's introduction (Hellerstein & Stonebraker's predicate
// migration / Chaudhuri & Shim's optimization of expensive predicates).
struct PredicateEstimate {
  std::string name;
  // Predicted cost of evaluating the predicate on one tuple (any consistent
  // unit, e.g. microseconds).
  double cost_per_tuple = 0.0;
  // Fraction of tuples that pass, in [0, 1].
  double selectivity = 1.0;
  // Uncertainty of the cost estimate (same unit as cost_per_tuple) and the
  // number of observations supporting it, from the model's CostEstimate.
  // Defaults keep variance-blind callers working: 0 stddev / 0 support
  // makes the risk adjustment degenerate to the point estimate.
  double cost_stddev = 0.0;
  int64_t support = 0;

  // Predicate rank (selectivity - 1) / cost: ordering by ascending rank
  // minimizes expected evaluation cost of a conjunctive chain.
  double Rank() const;

  // Risk-adjusted per-tuple cost: mean + k * stddev / sqrt(support) — the
  // point estimate padded by k standard errors. An unsupported estimate
  // (support 0) is padded by the full k * stddev: nothing has averaged the
  // noise away. k = 0 is exactly the point estimate.
  double RiskAdjustedCost(double k) const;

  // Rank computed with RiskAdjustedCost in the denominator; identical to
  // Rank() when k = 0.
  double RiskRank(double k) const;
};

// Knobs for risk-aware ordering. k is in standard errors: 0 reproduces the
// classical rank ordering exactly; 1-2 pads each cost estimate by its
// standard error(s) so a cheap-looking but noisy predicate loses near-ties
// against a slightly dearer, well-supported one.
struct RiskPolicy {
  double k = 0.0;
  // Beam width for the risk ordering's prefix search. The classical rank
  // sort is provably optimal for independent point estimates, but with
  // risk-padded costs the greedy order can be beaten; the beam explores
  // alternative prefixes while pruning high-variance orderings early.
  int beam_width = 4;
};

// Result of ordering a set of predicates.
struct OrderingResult {
  // Indices into the input span, in evaluation order.
  std::vector<int> order;
  // Expected evaluation cost of one tuple under that order.
  double expected_cost_per_tuple = 0.0;
  // Risk-adjusted expected cost of the order (equals
  // expected_cost_per_tuple when every stddev is 0 or k = 0).
  double risk_cost_per_tuple = 0.0;
};

// Expected per-tuple cost of evaluating `predicates` in the given order:
// sum_i cost_i * prod_{j before i} selectivity_j (short-circuit AND).
double SequenceCostPerTuple(std::span<const PredicateEstimate> predicates,
                            std::span<const int> order);

// Risk-adjusted variant of SequenceCostPerTuple: per-tuple costs are
// padded to RiskAdjustedCost(k); pass probabilities stay point estimates.
double RiskSequenceCostPerTuple(std::span<const PredicateEstimate> predicates,
                                std::span<const int> order, double k);

// Orders predicates by ascending rank (optimal for independent predicates)
// and reports the expected cost of the chosen order.
OrderingResult OrderPredicates(std::span<const PredicateEstimate> predicates);

// Risk-aware ordering. With policy.k == 0 this returns OrderPredicates'
// result exactly (same order, same expected cost — bit-identical), so the
// knob's default is a no-op. With k > 0 it runs a beam search over order
// prefixes scored by risk-adjusted sequence cost, pruning all but the
// beam_width cheapest prefixes at each depth — high-variance orderings
// fall out of the beam early instead of being enumerated.
OrderingResult OrderPredicatesRisk(
    std::span<const PredicateEstimate> predicates, const RiskPolicy& policy);

// Expected cost of the *worst* ordering, for headroom reporting in demos.
double WorstSequenceCostPerTuple(std::span<const PredicateEstimate> predicates);

}  // namespace mlq

#endif  // MLQ_OPTIMIZER_PREDICATE_ORDERING_H_
