#ifndef MLQ_OPTIMIZER_PREDICATE_ORDERING_H_
#define MLQ_OPTIMIZER_PREDICATE_ORDERING_H_

#include <span>
#include <string>
#include <vector>

namespace mlq {

// One UDF predicate in a conjunctive WHERE clause, as the optimizer sees
// it: an estimated per-tuple evaluation cost (from a CostModel) and an
// estimated selectivity. This is the motivating use of UDF cost models in
// the paper's introduction (Hellerstein & Stonebraker's predicate
// migration / Chaudhuri & Shim's optimization of expensive predicates).
struct PredicateEstimate {
  std::string name;
  // Predicted cost of evaluating the predicate on one tuple (any consistent
  // unit, e.g. microseconds).
  double cost_per_tuple = 0.0;
  // Fraction of tuples that pass, in [0, 1].
  double selectivity = 1.0;

  // Predicate rank (selectivity - 1) / cost: ordering by ascending rank
  // minimizes expected evaluation cost of a conjunctive chain.
  double Rank() const;
};

// Result of ordering a set of predicates.
struct OrderingResult {
  // Indices into the input span, in evaluation order.
  std::vector<int> order;
  // Expected evaluation cost of one tuple under that order.
  double expected_cost_per_tuple = 0.0;
};

// Expected per-tuple cost of evaluating `predicates` in the given order:
// sum_i cost_i * prod_{j before i} selectivity_j (short-circuit AND).
double SequenceCostPerTuple(std::span<const PredicateEstimate> predicates,
                            std::span<const int> order);

// Orders predicates by ascending rank (optimal for independent predicates)
// and reports the expected cost of the chosen order.
OrderingResult OrderPredicates(std::span<const PredicateEstimate> predicates);

// Expected cost of the *worst* ordering, for headroom reporting in demos.
double WorstSequenceCostPerTuple(std::span<const PredicateEstimate> predicates);

}  // namespace mlq

#endif  // MLQ_OPTIMIZER_PREDICATE_ORDERING_H_
