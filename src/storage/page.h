#ifndef MLQ_STORAGE_PAGE_H_
#define MLQ_STORAGE_PAGE_H_

#include <cstdint>

namespace mlq {

// Simulated disk page size. The substrate engines (inverted index, grid
// index) lay their data structures out on pages of this size and perform
// all reads through the buffer pool, so that the *disk-IO cost* of a UDF is
// the number of physical page reads — exactly the quantity the paper's cost
// models predict (ec_IO, "number of disk pages fetched", Section 3).
inline constexpr int64_t kPageSizeBytes = 4096;

using PageId = int64_t;
inline constexpr PageId kInvalidPageId = -1;

// Number of pages needed to store `bytes` bytes.
inline int64_t PagesForBytes(int64_t bytes) {
  if (bytes <= 0) return 0;
  return (bytes + kPageSizeBytes - 1) / kPageSizeBytes;
}

}  // namespace mlq

#endif  // MLQ_STORAGE_PAGE_H_
