#include "storage/buffer_pool.h"

#include <cassert>

namespace mlq {

BufferPool::BufferPool(int64_t capacity_pages) : capacity_(capacity_pages) {
  assert(capacity_pages > 0);
}

bool BufferPool::Fetch(PageFile* file, PageId page) {
  assert(file != nullptr);
  assert(page >= 0 && page < file->num_pages());
  const FrameKey key{file, page};
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    // Hit: move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  // Miss: evict if full, then admit at MRU.
  ++misses_;
  file->RecordPhysicalRead(page);
  if (static_cast<int64_t>(frames_.size()) >= capacity_) {
    const FrameKey& victim = lru_.back();
    frames_.erase(victim);
    lru_.pop_back();
  }
  lru_.push_front(key);
  frames_[key] = lru_.begin();
  return false;
}

int64_t BufferPool::FetchRun(PageFile* file, PageId first_page,
                             int64_t num_pages) {
  int64_t miss_count = 0;
  for (int64_t i = 0; i < num_pages; ++i) {
    if (!Fetch(file, first_page + i)) ++miss_count;
  }
  return miss_count;
}

void BufferPool::Invalidate() {
  frames_.clear();
  lru_.clear();
}

}  // namespace mlq
