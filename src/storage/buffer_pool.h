#ifndef MLQ_STORAGE_BUFFER_POOL_H_
#define MLQ_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "storage/page.h"
#include "storage/page_file.h"

namespace mlq {

// An LRU buffer pool over simulated page files.
//
// This is the mechanism behind the paper's Experiment 3 observation that
// disk-IO costs "fluctuate at the same data point coordinate": whether a
// UDF execution pays a physical read for a page depends on what earlier
// executions left in the cache. The pool therefore makes the substrate's IO
// cost surface *stateful and noisy* in exactly the way Oracle's buffer
// cache made the paper's.
class BufferPool {
 public:
  // `capacity_pages` frames; e.g. 4096 frames of 4 KB = the paper's 16 MB
  // Oracle data buffer cache.
  explicit BufferPool(int64_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Reads one page. Returns true on a cache hit; on a miss the LRU frame is
  // evicted, the file's physical-read counter bumps, and false is returned.
  bool Fetch(PageFile* file, PageId page);

  // Reads a run of consecutive pages; returns the number of misses.
  int64_t FetchRun(PageFile* file, PageId first_page, int64_t num_pages);

  int64_t capacity_pages() const { return capacity_; }
  int64_t resident_pages() const { return static_cast<int64_t>(frames_.size()); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  double HitRate() const {
    int64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

  // Drops all cached pages (cold cache) without clearing statistics.
  void Invalidate();
  void ResetStats() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  struct FrameKey {
    const PageFile* file;
    PageId page;
    bool operator==(const FrameKey& other) const {
      return file == other.file && page == other.page;
    }
  };
  struct FrameKeyHash {
    size_t operator()(const FrameKey& k) const {
      // Mix the pointer and page id; splitmix-style finalizer.
      uint64_t h = reinterpret_cast<uint64_t>(k.file) ^
                   (static_cast<uint64_t>(k.page) * 0x9e3779b97f4a7c15ULL);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  int64_t capacity_;
  // Most-recently-used at the front.
  std::list<FrameKey> lru_;
  std::unordered_map<FrameKey, std::list<FrameKey>::iterator, FrameKeyHash> frames_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace mlq

#endif  // MLQ_STORAGE_BUFFER_POOL_H_
