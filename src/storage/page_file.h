#ifndef MLQ_STORAGE_PAGE_FILE_H_
#define MLQ_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <string>

#include "storage/page.h"

namespace mlq {

// A simulated disk file: a growable sequence of pages plus physical-read
// statistics. Page *contents* are not materialized — the substrate engines
// keep their data in ordinary C++ structures and use PageFile/BufferPool
// only to model which pages an operation would touch; the cost experiments
// depend solely on the access pattern, not the bytes.
class PageFile {
 public:
  explicit PageFile(std::string name) : name_(std::move(name)) {}

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  const std::string& name() const { return name_; }

  // Appends one page; returns its id (dense, starting at 0).
  PageId Allocate() { return num_pages_++; }

  // Appends `n` consecutive pages; returns the id of the first.
  PageId AllocateRun(int64_t n) {
    PageId first = num_pages_;
    num_pages_ += n;
    return first;
  }

  int64_t num_pages() const { return num_pages_; }

  // Records a physical read of `id` (called by the buffer pool on a miss).
  void RecordPhysicalRead(PageId id) {
    (void)id;
    ++physical_reads_;
  }

  int64_t physical_reads() const { return physical_reads_; }
  void ResetStats() { physical_reads_ = 0; }

 private:
  std::string name_;
  int64_t num_pages_ = 0;
  int64_t physical_reads_ = 0;
};

}  // namespace mlq

#endif  // MLQ_STORAGE_PAGE_FILE_H_
