#include "common/bench_report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/args.h"

namespace mlq {
namespace {

// JSON string escaping for the small set of characters table cells can
// realistically contain.
void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

// Emits a cell as a JSON number when the whole cell parses as one (the
// common case: TablePrinter::Num output), else as a string. inf/nan are
// not valid JSON numbers, so they stay strings.
void WriteJsonCell(std::ostream& os, const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() + cell.size() && std::isfinite(v)) {
      os << cell;
      return;
    }
  }
  WriteJsonString(os, cell);
}

}  // namespace

BenchReport& BenchReport::Global() {
  static BenchReport* instance = new BenchReport();
  return *instance;
}

void BenchReport::RecordTable(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::lock_guard<std::mutex> lock(mutex_);
  tables_.push_back(Table{header, rows});
}

bool BenchReport::WriteJson(const std::string& path,
                            const std::string& bench_name) const {
  std::ofstream out(path);
  if (!out) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"bench\": ";
  WriteJsonString(out, bench_name);
  out << ", \"tables\": [";
  for (size_t t = 0; t < tables_.size(); ++t) {
    const Table& table = tables_[t];
    out << (t == 0 ? "" : ", ") << "{\"columns\": [";
    for (size_t c = 0; c < table.header.size(); ++c) {
      if (c != 0) out << ", ";
      WriteJsonString(out, table.header[c]);
    }
    out << "], \"rows\": [";
    for (size_t r = 0; r < table.rows.size(); ++r) {
      out << (r == 0 ? "" : ", ") << '[';
      for (size_t c = 0; c < table.rows[r].size(); ++c) {
        if (c != 0) out << ", ";
        WriteJsonCell(out, table.rows[r][c]);
      }
      out << ']';
    }
    out << "]}";
  }
  out << "]}\n";
  return out.good();
}

void BenchReport::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  tables_.clear();
}

int MaybeWriteBenchJson(int argc, char** argv,
                        const std::string& bench_name) {
  const std::string path = ArgValue(argc, argv, "json");
  if (path.empty()) return 0;
  if (!BenchReport::Global().WriteJson(path, bench_name)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote JSON results to %s\n", path.c_str());
  return 0;
}

}  // namespace mlq
