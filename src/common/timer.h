#ifndef MLQ_COMMON_TIMER_H_
#define MLQ_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mlq {

// Monotonic wall-clock stopwatch used to measure prediction / insertion /
// compression overheads (APC and AUC in Section 3 of the paper).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across many start/stop intervals, e.g. total compression
// time over a whole workload.
class AccumulatingTimer {
 public:
  void Start() { running_ = WallTimer(); }
  void Stop() {
    total_seconds_ += running_.ElapsedSeconds();
    ++intervals_;
  }

  double total_seconds() const { return total_seconds_; }
  int64_t intervals() const { return intervals_; }

  void Add(double seconds) {
    total_seconds_ += seconds;
    ++intervals_;
  }

  void Reset() {
    total_seconds_ = 0.0;
    intervals_ = 0;
  }

 private:
  WallTimer running_;
  double total_seconds_ = 0.0;
  int64_t intervals_ = 0;
};

// Deterministic work-unit counter. The substrate UDFs report their "actual
// CPU cost" in abstract work units (each unit standing for a fixed bundle
// of instructions) so experiments are reproducible bit-for-bit across
// machines; kMicrosPerWorkUnit converts units into nominal microseconds
// when a wall-clock-like figure is needed (Fig. 10 normalization).
inline constexpr double kMicrosPerWorkUnit = 0.05;

// Nominal cost of one buffer-pool miss (a random page read on ~2003
// hardware), used for the same normalization of disk-IO costs.
inline constexpr double kMicrosPerPageMiss = 5000.0;

class WorkCounter {
 public:
  void Add(int64_t units) { units_ += units; }
  int64_t units() const { return units_; }
  double NominalMicros() const {
    return static_cast<double>(units_) * kMicrosPerWorkUnit;
  }
  void Reset() { units_ = 0; }

 private:
  int64_t units_ = 0;
};

}  // namespace mlq

#endif  // MLQ_COMMON_TIMER_H_
