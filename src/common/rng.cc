#include "common/rng.h"

#include <cmath>

namespace mlq {
namespace {

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t Rng::SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
  has_cached_gaussian_ = false;
}

uint64_t Rng::Next64() {
  const uint64_t result = RotL(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // Full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw = Next64();
  while (draw >= limit) draw = Next64();
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller. u1 in (0, 1] avoids log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Split() { return Rng(Next64()); }

}  // namespace mlq
