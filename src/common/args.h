#ifndef MLQ_COMMON_ARGS_H_
#define MLQ_COMMON_ARGS_H_

#include <string>
#include <string_view>

namespace mlq {

// Minimal command-line handling for the bench binaries: finds "--name=value"
// or the two-token form "--name value" in argv and returns the value, or
// `default_value` when absent. Keeps the harness dependency-free; the
// benches only need one or two switches (e.g. --csv=out.csv).
inline std::string ArgValue(int argc, char** argv, std::string_view name,
                            std::string_view default_value = "") {
  const std::string flag = "--" + std::string(name);
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, prefix.size()) == prefix) {
      return std::string(arg.substr(prefix.size()));
    }
    // Two-token form: the value must exist and not itself be a flag.
    if (arg == flag && i + 1 < argc && argv[i + 1][0] != '-') {
      return argv[i + 1];
    }
  }
  return std::string(default_value);
}

// True when the bare flag "--name" (no value) is present.
inline bool HasFlag(int argc, char** argv, std::string_view name) {
  const std::string flag = "--" + std::string(name);
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace mlq

#endif  // MLQ_COMMON_ARGS_H_
