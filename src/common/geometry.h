#ifndef MLQ_COMMON_GEOMETRY_H_
#define MLQ_COMMON_GEOMETRY_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace mlq {

// Maximum number of model variables (dimensions) supported by the library.
// The paper evaluates d = 1..4; eight leaves generous headroom while keeping
// Point a small, stack-only value type.
inline constexpr int kMaxDims = 8;

// A point in up-to-kMaxDims-dimensional space. Cheap to copy; the dimension
// is fixed at construction.
class Point {
 public:
  Point() = default;
  // All coordinates initialized to `fill`.
  explicit Point(int dims, double fill = 0.0);
  Point(std::initializer_list<double> coords);

  int dims() const { return dims_; }
  double operator[](int i) const { return coords_[static_cast<size_t>(i)]; }
  double& operator[](int i) { return coords_[static_cast<size_t>(i)]; }

  // Euclidean distance to another point of the same dimensionality.
  double DistanceTo(const Point& other) const;

  // "(x0, x1, ...)" for logs and test failure messages.
  std::string ToString() const;

  friend bool operator==(const Point& a, const Point& b);

 private:
  std::array<double, kMaxDims> coords_{};
  int dims_ = 0;
};

// An axis-aligned box [lo, hi] in up-to-kMaxDims dimensions. Quadtree blocks
// are Boxes; containment treats blocks as half-open [lo, hi) so that sibling
// blocks never overlap, except that a point lying exactly on the global upper
// boundary is owned by the topmost block along that edge (see Contains).
class Box {
 public:
  Box() = default;
  Box(const Point& lo, const Point& hi);

  // The cube [lo, hi]^dims.
  static Box Cube(int dims, double lo, double hi);

  int dims() const { return lo_.dims(); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  // Half-open containment: lo <= p < hi in every dimension, with the upper
  // edge included when `closed_above` is set for that comparison. The
  // quadtree root uses closed-above containment so the whole model space is
  // covered.
  bool Contains(const Point& p) const;
  bool ContainsClosed(const Point& p) const;

  Point Center() const;
  double Extent(int dim) const { return hi_[dim] - lo_[dim]; }
  double Volume() const;
  // Length of the main diagonal (distance between extreme corners); the
  // paper expresses the decay radius D as a fraction of this.
  double DiagonalLength() const;

  // Quadtree child block for `child_index` in [0, 2^dims). Bit i of the
  // index selects the upper half along dimension i.
  Box Child(int child_index) const;

  // Index of the child block that `p` falls into. `p` must satisfy
  // ContainsClosed(p); points on the midpoint plane go to the upper child,
  // points on the global upper edge are clamped into the top child.
  int ChildIndexOf(const Point& p) const;

  // True when the boxes intersect (closed comparison).
  bool Intersects(const Box& other) const;

  std::string ToString() const;

  friend bool operator==(const Box& a, const Box& b);

 private:
  Point lo_;
  Point hi_;
};

}  // namespace mlq

#endif  // MLQ_COMMON_GEOMETRY_H_
