#include "common/stats.h"

#include <cmath>

namespace mlq {

void RunningStat::Add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);
}

double RunningStat::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::Stddev() const { return std::sqrt(Variance()); }

}  // namespace mlq
