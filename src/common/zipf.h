#ifndef MLQ_COMMON_ZIPF_H_
#define MLQ_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mlq {

// Zipf distribution over ranks 1..n with exponent z:
//   P(rank = k) proportional to 1 / k^z.
//
// The paper draws synthetic peak heights from Zipf(z = 1) and news-corpus
// term frequencies are classically Zipfian, so this sampler backs both the
// synthetic cost surfaces and the text substrate.
class ZipfDistribution {
 public:
  // Builds the cumulative table once; sampling is then O(log n).
  ZipfDistribution(int64_t n, double z);

  // Number of ranks.
  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }
  double z() const { return z_; }

  // Draws a rank in [1, n].
  int64_t Sample(Rng& rng) const;

  // Probability mass of a rank in [1, n].
  double Pmf(int64_t rank) const;

  // Relative frequency of `rank` normalized so that rank 1 has weight 1.
  // Used to turn ranks into magnitudes (e.g. peak heights, term counts).
  double RelativeWeight(int64_t rank) const;

 private:
  double z_ = 1.0;
  double normalizer_ = 1.0;             // Generalized harmonic number H_{n,z}.
  std::vector<double> cdf_;             // cdf_[k-1] = P(rank <= k).
};

}  // namespace mlq

#endif  // MLQ_COMMON_ZIPF_H_
