#include "common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mlq {

ZipfDistribution::ZipfDistribution(int64_t n, double z) : z_(z) {
  assert(n >= 1);
  cdf_.resize(static_cast<size_t>(n));
  double running = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    running += 1.0 / std::pow(static_cast<double>(k), z_);
    cdf_[static_cast<size_t>(k - 1)] = running;
  }
  normalizer_ = running;
  for (double& v : cdf_) v /= normalizer_;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::Pmf(int64_t rank) const {
  if (rank < 1 || rank > n()) return 0.0;
  return 1.0 / std::pow(static_cast<double>(rank), z_) / normalizer_;
}

double ZipfDistribution::RelativeWeight(int64_t rank) const {
  if (rank < 1) return 0.0;
  return 1.0 / std::pow(static_cast<double>(rank), z_);
}

}  // namespace mlq
