#include "common/geometry.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace mlq {

Point::Point(int dims, double fill) : dims_(dims) {
  assert(dims >= 0 && dims <= kMaxDims);
  for (int i = 0; i < dims_; ++i) coords_[static_cast<size_t>(i)] = fill;
}

Point::Point(std::initializer_list<double> coords)
    : dims_(static_cast<int>(coords.size())) {
  assert(dims_ <= kMaxDims);
  int i = 0;
  for (double c : coords) coords_[static_cast<size_t>(i++)] = c;
}

double Point::DistanceTo(const Point& other) const {
  assert(dims_ == other.dims_);
  double sum = 0.0;
  for (int i = 0; i < dims_; ++i) {
    double diff = (*this)[i] - other[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

std::string Point::ToString() const {
  std::string out = "(";
  char buf[32];
  for (int i = 0; i < dims_; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.6g", i == 0 ? "" : ", ", (*this)[i]);
    out += buf;
  }
  out += ")";
  return out;
}

bool operator==(const Point& a, const Point& b) {
  if (a.dims_ != b.dims_) return false;
  for (int i = 0; i < a.dims_; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

Box::Box(const Point& lo, const Point& hi) : lo_(lo), hi_(hi) {
  assert(lo.dims() == hi.dims());
#ifndef NDEBUG
  for (int i = 0; i < lo.dims(); ++i) assert(lo[i] <= hi[i]);
#endif
}

Box Box::Cube(int dims, double lo, double hi) {
  return Box(Point(dims, lo), Point(dims, hi));
}

bool Box::Contains(const Point& p) const {
  assert(p.dims() == dims());
  for (int i = 0; i < dims(); ++i) {
    if (p[i] < lo_[i] || p[i] >= hi_[i]) return false;
  }
  return true;
}

bool Box::ContainsClosed(const Point& p) const {
  assert(p.dims() == dims());
  for (int i = 0; i < dims(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

Point Box::Center() const {
  Point center(dims());
  for (int i = 0; i < dims(); ++i) center[i] = 0.5 * (lo_[i] + hi_[i]);
  return center;
}

double Box::Volume() const {
  double volume = 1.0;
  for (int i = 0; i < dims(); ++i) volume *= Extent(i);
  return volume;
}

double Box::DiagonalLength() const { return lo_.DistanceTo(hi_); }

Box Box::Child(int child_index) const {
  assert(child_index >= 0 && child_index < (1 << dims()));
  Point lo(dims());
  Point hi(dims());
  for (int i = 0; i < dims(); ++i) {
    double mid = 0.5 * (lo_[i] + hi_[i]);
    if ((child_index >> i) & 1) {
      lo[i] = mid;
      hi[i] = hi_[i];
    } else {
      lo[i] = lo_[i];
      hi[i] = mid;
    }
  }
  return Box(lo, hi);
}

int Box::ChildIndexOf(const Point& p) const {
  assert(ContainsClosed(p));
  int index = 0;
  for (int i = 0; i < dims(); ++i) {
    double mid = 0.5 * (lo_[i] + hi_[i]);
    if (p[i] >= mid) index |= (1 << i);
  }
  return index;
}

bool Box::Intersects(const Box& other) const {
  assert(dims() == other.dims());
  for (int i = 0; i < dims(); ++i) {
    if (hi_[i] < other.lo_[i] || other.hi_[i] < lo_[i]) return false;
  }
  return true;
}

std::string Box::ToString() const {
  return "[" + lo_.ToString() + " .. " + hi_.ToString() + "]";
}

bool operator==(const Box& a, const Box& b) {
  return a.lo_ == b.lo_ && a.hi_ == b.hi_;
}

}  // namespace mlq
