#ifndef MLQ_COMMON_MEMORY_BUDGET_H_
#define MLQ_COMMON_MEMORY_BUDGET_H_

#include <cstdint>

namespace mlq {

// Byte-level accounting of the memory a cost model is allowed to use.
//
// The paper allocates each method a strict budget (1.8 KB in the
// experiments, Section 5.1) and triggers quadtree compression when the
// limit is reached. The budget is *logical*: models charge the bytes their
// on-disk/catalog representation would occupy (node summaries, child slots,
// histogram buckets), not the transient C++ heap overhead, so that MLQ and
// SH are compared on equal footing exactly as in the paper.
class MemoryBudget {
 public:
  explicit MemoryBudget(int64_t limit_bytes) : limit_(limit_bytes) {}

  int64_t limit() const { return limit_; }

  // Re-targets the budget (catalog-level governors redistribute byte
  // budget across models at runtime). Usage is untouched: when the new
  // limit is below used(), the owner must shed state (the quadtree runs
  // compression passes) until the accounting fits again.
  void SetLimit(int64_t limit_bytes) { limit_ = limit_bytes; }

  int64_t used() const { return used_; }
  int64_t available() const { return limit_ - used_; }

  // True when `bytes` more can be charged without exceeding the limit.
  bool CanCharge(int64_t bytes) const { return used_ + bytes <= limit_; }

  // Records an allocation. Callers must check CanCharge first (the tree
  // compresses before allocating); charging past the limit is a programming
  // error in release builds too, so it is tolerated but remembered via
  // peak tracking rather than silently clamped.
  void Charge(int64_t bytes) {
    used_ += bytes;
    if (used_ > peak_) peak_ = used_;
  }

  // Records a deallocation.
  void Release(int64_t bytes) { used_ -= bytes; }

  // Sets the absolute usage. For owners that can derive their exact logical
  // footprint from first principles (the quadtree recomputes it from the
  // node-pool live count after every structural change), this is safer than
  // incremental Charge/Release pairs: the accounting cannot drift.
  void SetUsed(int64_t bytes) {
    used_ = bytes;
    if (used_ > peak_) peak_ = used_;
  }

  // High-water mark, for reporting.
  int64_t peak() const { return peak_; }

 private:
  int64_t limit_;
  int64_t used_ = 0;
  int64_t peak_ = 0;
};

}  // namespace mlq

#endif  // MLQ_COMMON_MEMORY_BUDGET_H_
