#ifndef MLQ_COMMON_BENCH_REPORT_H_
#define MLQ_COMMON_BENCH_REPORT_H_

#include <mutex>
#include <string>
#include <vector>

namespace mlq {

// Process-global recorder of every table a bench binary prints, so each
// bench can offer `--json <path>` (machine-readable results) without
// per-bench serialization code: TablePrinter::Print feeds the recorder
// automatically, and the bench's main calls MaybeWriteBenchJson once at
// the end.
class BenchReport {
 public:
  static BenchReport& Global();

  void RecordTable(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

  // Writes {"bench": <name>, "tables": [{"columns": [...],
  // "rows": [[...], ...]}, ...]}. Cells that parse fully as numbers are
  // emitted as JSON numbers, everything else as strings. Returns false
  // when the file cannot be written.
  bool WriteJson(const std::string& path, const std::string& bench_name) const;

  void Clear();

 private:
  struct Table {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };

  BenchReport() = default;

  mutable std::mutex mutex_;
  std::vector<Table> tables_;
};

// Bench-main epilogue: when --json=PATH (or "--json PATH") is present in
// argv, dumps every table recorded so far to PATH. Returns 0 on success or
// when the flag is absent, 1 when the write fails — suitable as the final
// `return` of main.
int MaybeWriteBenchJson(int argc, char** argv, const std::string& bench_name);

}  // namespace mlq

#endif  // MLQ_COMMON_BENCH_REPORT_H_
