#ifndef MLQ_COMMON_TABLE_PRINTER_H_
#define MLQ_COMMON_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace mlq {

// Minimal fixed-width table formatter so every bench binary prints its
// figure/table in the same aligned, grep-friendly layout:
//
//   TablePrinter t({"peaks", "MLQ-E", "MLQ-L", "SH-H", "SH-W"});
//   t.AddRow({"10", "0.213", "0.246", "0.232", "0.301"});
//   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 4);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mlq

#endif  // MLQ_COMMON_TABLE_PRINTER_H_
