#ifndef MLQ_COMMON_RNG_H_
#define MLQ_COMMON_RNG_H_

#include <cstdint>
#include <limits>

namespace mlq {

// Deterministic pseudo-random number generator.
//
// A small, fast xoshiro256++ generator seeded through splitmix64 so that
// every experiment in the repository is reproducible from a single 64-bit
// seed. This intentionally avoids std::mt19937 whose stream differs between
// standard library vendors for some distribution adapters; all distribution
// logic here is hand-rolled on top of raw 64-bit draws.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Reseed(seed); }

  // Re-seeds the generator. Equal seeds yield equal streams.
  void Reseed(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi). Requires lo <= hi; returns lo when lo == hi.
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal variate (Box-Muller with caching of the second value).
  double NextGaussian();

  // Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Bernoulli trial that succeeds with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Splits off an independently seeded generator; useful for giving each
  // subsystem its own stream derived from one master seed.
  Rng Split();

 private:
  static uint64_t SplitMix64(uint64_t& state);

  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace mlq

#endif  // MLQ_COMMON_RNG_H_
