#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/bench_report.h"

namespace mlq {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  // Every printed table is also recorded so bench binaries can emit their
  // results as JSON (--json) without separate serialization code.
  BenchReport::Global().RecordTable(header_, rows_);
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mlq
