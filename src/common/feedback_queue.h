#ifndef MLQ_COMMON_FEEDBACK_QUEUE_H_
#define MLQ_COMMON_FEEDBACK_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace mlq {

// Bounded multi-producer feedback buffer with drop-oldest overflow.
//
// Producers (execution threads delivering cost observations) call Push,
// which only ever takes this queue's own mutex — never the mutex of the
// model the observations are destined for — so feedback delivery cannot
// block behind a model that is busy predicting or compressing. A consumer
// periodically moves the pending items out with PopBatch (FIFO order) and
// applies them while holding the model lock.
//
// When the ring is full the *oldest* pending observation is overwritten:
// for cost feedback, fresh observations are strictly more valuable than
// stale ones, and a bounded queue keeps the memory cost of a slow consumer
// fixed. Drops are counted, never silent.
template <typename T>
class BoundedFeedbackQueue {
 public:
  explicit BoundedFeedbackQueue(size_t capacity)
      : ring_(capacity > 0 ? capacity : 1) {}

  BoundedFeedbackQueue(const BoundedFeedbackQueue&) = delete;
  BoundedFeedbackQueue& operator=(const BoundedFeedbackQueue&) = delete;

  // Enqueues `item`. Returns false when the queue was full and the oldest
  // pending item was dropped to make room.
  bool Push(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pushed_;
    if (count_ == ring_.size()) {
      // Overwrite the oldest slot and advance the head past it.
      ring_[head_] = std::move(item);
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
      return false;
    }
    ring_[(head_ + count_) % ring_.size()] = std::move(item);
    ++count_;
    approx_count_.store(count_, std::memory_order_release);
    return true;
  }

  // Enqueues every item in order under ONE mutex acquisition — the batched
  // feedback path's amortization of Push. Overflow semantics are identical
  // to item-wise Push (drop-oldest per enqueued item). Returns how many
  // older items were dropped to make room.
  size_t PushBatch(std::span<const T> items) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t newly_dropped = 0;
    for (const T& item : items) {
      ++pushed_;
      if (count_ == ring_.size()) {
        ring_[head_] = item;
        head_ = (head_ + 1) % ring_.size();
        ++dropped_;
        ++newly_dropped;
        continue;
      }
      ring_[(head_ + count_) % ring_.size()] = item;
      ++count_;
    }
    approx_count_.store(count_, std::memory_order_release);
    return newly_dropped;
  }

  // Appends up to `max_items` pending items (0 = everything) to `out` in
  // FIFO order and removes them from the queue. Returns how many moved.
  size_t PopBatch(std::vector<T>* out, size_t max_items = 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = count_;
    if (max_items > 0 && max_items < n) n = max_items;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(ring_[head_]));
      head_ = (head_ + 1) % ring_.size();
    }
    count_ -= n;
    approx_count_.store(count_, std::memory_order_release);
    return n;
  }

  // Lock-free emptiness hint for consumers deciding whether a drain is
  // worth its lock round-trip. Exact for a thread's own pushes (a thread
  // always observes its own enqueues); another producer's in-flight item
  // may be missed momentarily, which only defers it to the next drain
  // trigger — never loses it.
  bool AppearsEmpty() const {
    return approx_count_.load(std::memory_order_acquire) == 0;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

  size_t capacity() const { return ring_.size(); }

  // Total Push calls, and how many of them cost an older item its slot.
  int64_t pushed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
  }
  int64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<T> ring_;
  size_t head_ = 0;   // Index of the oldest pending item.
  size_t count_ = 0;  // Pending items.
  // Mirror of count_ for the lock-free AppearsEmpty hint.
  std::atomic<size_t> approx_count_{0};
  int64_t pushed_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace mlq

#endif  // MLQ_COMMON_FEEDBACK_QUEUE_H_
