#ifndef MLQ_COMMON_STATS_H_
#define MLQ_COMMON_STATS_H_

#include <cmath>
#include <cstdint>

namespace mlq {

// The summary triple stored in every quadtree node (Section 4.1 of the
// paper): sum S(b), count C(b) and sum of squares SS(b) of the cost values
// of all data points that map into block b. From these the node derives
//   AVG(b) = S(b) / C(b)                         (Eq. 3)
//   SSE(b) = SS(b) - C(b) * AVG(b)^2             (Eq. 4)
// both in O(1).
struct SummaryTriple {
  double sum = 0.0;
  int64_t count = 0;
  double sum_squares = 0.0;

  // Folds one observation with value `v` into the summary.
  void Add(double v) {
    sum += v;
    count += 1;
    sum_squares += v * v;
  }

  // Folds another summary into this one (used by tests and validators; the
  // tree itself maintains summaries cumulatively on the insert path).
  void Merge(const SummaryTriple& other) {
    sum += other.sum;
    count += other.count;
    sum_squares += other.sum_squares;
  }

  // Average value; 0 when empty.
  double Avg() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  // Sum of squared errors about the average (Eq. 4), clamped at zero to
  // absorb floating-point cancellation.
  double Sse() const {
    if (count <= 0) return 0.0;
    double avg = Avg();
    double sse = sum_squares - static_cast<double>(count) * avg * avg;
    return sse > 0.0 ? sse : 0.0;
  }

  // Standard deviation of the summarized values, sqrt(SSE/C). The single
  // robust spelling every prediction path must use: 0 when the summary is
  // empty (a bare sqrt(SSE/C) would be sqrt(0/0) = NaN), and never NaN for
  // near-constant values because Sse() clamps cancellation residue at 0.
  double Stddev() const {
    if (count <= 0) return 0.0;
    return std::sqrt(Sse() / static_cast<double>(count));
  }

  bool Empty() const { return count == 0; }
};

inline bool operator==(const SummaryTriple& a, const SummaryTriple& b) {
  return a.sum == b.sum && a.count == b.count && a.sum_squares == b.sum_squares;
}

// Streaming mean / variance / extrema over a sequence of doubles (Welford).
// Used by evaluation reporting; not part of the quadtree itself.
class RunningStat {
 public:
  void Add(double v);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  // Population variance / stddev; 0 with fewer than two samples.
  double Variance() const;
  double Stddev() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mlq

#endif  // MLQ_COMMON_STATS_H_
