#include "eval/evaluator.h"

#include "common/timer.h"
#include "eval/metrics.h"

namespace mlq {
namespace {

double Ratio(double numerator, double denominator) {
  return denominator > 0.0 ? numerator / denominator : 0.0;
}

}  // namespace

double EvalResult::PcOverUdf() const {
  return Ratio(total_prediction_seconds * 1e6, total_udf_micros);
}
double EvalResult::IcOverUdf() const {
  return Ratio(ic_micros * static_cast<double>(num_queries), total_udf_micros);
}
double EvalResult::CcOverUdf() const {
  return Ratio(cc_micros * static_cast<double>(num_queries), total_udf_micros);
}
double EvalResult::MucOverUdf() const { return IcOverUdf() + CcOverUdf(); }

EvalResult RunSelfTuningEvaluation(CostModel& model, CostedUdf& udf,
                                   std::span<const Point> queries,
                                   const EvalOptions& options) {
  EvalResult result;
  result.model_name = std::string(model.name());
  result.udf_name = std::string(udf.name());
  result.num_queries = static_cast<int64_t>(queries.size());

  NaeAccumulator nae;
  LearningCurve curve(options.learning_curve_window);
  double prediction_seconds = 0.0;

  for (const Point& q : queries) {
    // The transformation T maps the execution point onto model variables
    // (identity for untransformed UDFs).
    const Point model_point = udf.ToModelPoint(q);
    WallTimer predict_timer;
    const double predicted = model.Predict(model_point);
    prediction_seconds += predict_timer.ElapsedSeconds();

    const UdfCost actual_cost = udf.Execute(q);
    const double actual = actual_cost.Get(options.cost_kind);
    result.total_udf_micros += actual_cost.NominalMicros();

    nae.Add(predicted, actual);
    curve.Add(predicted, actual);

    model.Observe(model_point, actual);
  }
  curve.Finish();

  const ModelUpdateBreakdown breakdown = model.update_breakdown();
  const auto n = static_cast<double>(result.num_queries);
  result.nae = nae.Nae();
  result.learning_curve = curve.series();
  result.total_prediction_seconds = prediction_seconds;
  result.total_update_seconds = breakdown.UpdateSeconds();
  result.compressions = breakdown.compressions;
  if (result.num_queries > 0) {
    result.apc_micros = prediction_seconds * 1e6 / n;
    result.ic_micros = breakdown.insert_seconds * 1e6 / n;
    result.cc_micros = breakdown.compress_seconds * 1e6 / n;
    result.auc_micros = result.ic_micros + result.cc_micros;
  }
  return result;
}

EvalResult RunStaticEvaluation(StaticHistogram& model, CostedUdf& udf,
                               std::span<const Point> training,
                               std::span<const Point> test,
                               const EvalOptions& options) {
  // A-priori training: execute the UDF over the training workload. (The
  // training executions are not part of the measured workload, matching the
  // paper's protocol for SH.) SH indexes the same transformed model
  // variables as MLQ.
  const std::vector<double> training_costs =
      ExecuteAll(udf, training, options.cost_kind);
  std::vector<Point> training_model_points;
  training_model_points.reserve(training.size());
  for (const Point& p : training) {
    training_model_points.push_back(udf.ToModelPoint(p));
  }
  model.Train(training_model_points, training_costs);

  EvalResult result;
  result.model_name = std::string(model.name());
  result.udf_name = std::string(udf.name());
  result.num_queries = static_cast<int64_t>(test.size());

  NaeAccumulator nae;
  LearningCurve curve(options.learning_curve_window);
  double prediction_seconds = 0.0;

  for (const Point& q : test) {
    WallTimer predict_timer;
    const double predicted = model.Predict(udf.ToModelPoint(q));
    prediction_seconds += predict_timer.ElapsedSeconds();

    const UdfCost actual_cost = udf.Execute(q);
    const double actual = actual_cost.Get(options.cost_kind);
    result.total_udf_micros += actual_cost.NominalMicros();

    nae.Add(predicted, actual);
    curve.Add(predicted, actual);
    // No feedback: SH is static.
  }
  curve.Finish();

  result.nae = nae.Nae();
  result.learning_curve = curve.series();
  result.total_prediction_seconds = prediction_seconds;
  if (result.num_queries > 0) {
    result.apc_micros =
        prediction_seconds * 1e6 / static_cast<double>(result.num_queries);
  }
  return result;
}

std::vector<double> ExecuteAll(CostedUdf& udf, std::span<const Point> points,
                               CostKind kind) {
  std::vector<double> costs;
  costs.reserve(points.size());
  for (const Point& p : points) costs.push_back(udf.Execute(p).Get(kind));
  return costs;
}

}  // namespace mlq
