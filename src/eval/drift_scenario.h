#ifndef MLQ_EVAL_DRIFT_SCENARIO_H_
#define MLQ_EVAL_DRIFT_SCENARIO_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "engine/drift_detector.h"
#include "model/cost_model.h"

namespace mlq {

// How the cost surface moves under the workload's feet.
enum class DriftShape {
  // The surface jumps by cost_scale_after at the drift point (an index
  // dropped, a table reloaded): the motivating case for the abrupt
  // classification and the decay-epoch burst.
  kAbruptStep,
  // The surface ramps linearly to cost_scale_after over ramp_queries (a
  // growing dataset, a cache cooling): no single query looks anomalous,
  // only the sustained divergence does.
  kGradualRamp,
};

// A deterministic cost-surface-drift experiment (distinct from
// bench/ablation_drift, which moves the QUERY distribution over a fixed
// surface; here the queries stay put and the surface itself changes — the
// case where a model's accumulated evidence becomes actively wrong).
struct DriftScenarioOptions {
  DriftShape shape = DriftShape::kAbruptStep;

  // Stream layout: steady phase, then the drift (step at the boundary, or
  // a ramp of ramp_queries), then the post-drift tail.
  int pre_drift_queries = 4000;
  int post_drift_queries = 4000;
  int ramp_queries = 2000;

  // Surface multiplier once the drift completes.
  double cost_scale_after = 3.0;

  // Windowed-NAE granularity for the reported series.
  int window = 250;

  // Master seed for the (deterministic) query stream.
  uint64_t seed = 42;

  // Stream-driven decay clock: AdvanceDecayEpoch(1) on the model every
  // this many queries (0 = clock never advances — what a decay-off or
  // unmaintained model experiences).
  int queries_per_decay_epoch = 0;

  // Decay-epoch burst applied when the embedded detector fires, mirroring
  // MaintenancePolicy::{abrupt,gradual}_drift_epochs. Both 0 = detector
  // still observes (and reports firings) but never reacts.
  int64_t abrupt_drift_epochs = 8;
  int64_t gradual_drift_epochs = 1;

  DriftDetectorOptions detector;
};

struct DriftScenarioResult {
  // Windowed NAE over the whole stream, options.window queries per entry.
  std::vector<double> nae_windows;

  // Steady-state NAE over the second half of the pre-drift phase (the
  // first half is warm-up): the re-convergence yardstick.
  double pre_drift_nae = 0.0;
  // NAE over the final quarter of the post-drift phase: where a
  // re-converged model should be back at (a bounded multiple of)
  // pre_drift_nae, and a model dragging lifetime evidence stays biased.
  double final_nae = 0.0;
  // Worst single window at/after the drift point (the transient).
  double worst_post_drift_nae = 0.0;

  // Detector outcome.
  int64_t detector_firings = 0;
  // Stream index of the first firing at/after the drift point; -1 = none.
  int64_t first_fire_query = -1;
  DriftKind first_fire_kind = DriftKind::kNone;

  // Decay epochs advanced on the model (steady clock + bursts).
  int64_t decay_epochs_advanced = 0;

  int64_t num_queries = 0;
};

// Runs the Fig. 1 self-tuning loop (predict, execute, feed back) over the
// drifting surface, with a DriftDetector watching every (predicted, actual)
// pair and the decay clock driven as configured. The model should cover
// DriftSurfaceSpace(); the stream and surface are fully determined by
// `options`, so two models run under equal options see identical inputs.
DriftScenarioResult RunDriftScenario(CostModel& model,
                                     const DriftScenarioOptions& options);

// The 2D model space the scenario's queries and surface live in.
Box DriftSurfaceSpace();

// The scenario's deterministic base cost surface (scale 1) at `q` — exposed
// so tests can assert against ground truth.
double DriftSurfaceBaseCost(const Point& q);

}  // namespace mlq

#endif  // MLQ_EVAL_DRIFT_SCENARIO_H_
