#include "eval/experiment_setup.h"

#include "model/mlq_model.h"
#include "model/static_histogram.h"

namespace mlq {

MlqConfig MakePaperMlqConfig(InsertionStrategy strategy, CostKind cost_kind,
                             int64_t memory_limit_bytes) {
  MlqConfig config;
  config.strategy = strategy;
  config.max_depth = 6;
  config.alpha = 0.05;
  config.gamma = 0.001;
  config.beta = cost_kind == CostKind::kCpu ? kPaperBetaCpu : kPaperBetaIo;
  config.memory_limit_bytes = memory_limit_bytes;
  return config;
}

std::unique_ptr<SyntheticUdf> MakePaperSyntheticUdf(int num_peaks,
                                                    double noise_probability,
                                                    uint64_t seed) {
  PeakSurfaceConfig surface;
  surface.dims = 4;
  surface.num_peaks = num_peaks;
  surface.range_lo = 0.0;
  surface.range_hi = 1000.0;
  surface.max_height = 10000.0;
  surface.zipf_z = 1.0;
  surface.decay_radius_frac = 0.10;
  surface.seed = seed;
  return std::make_unique<SyntheticUdf>(surface, noise_probability,
                                        /*noise_seed=*/seed ^ 0x5eedf00dULL);
}

CostedUdf* RealUdfSuite::Find(std::string_view name) const {
  for (const auto& udf : udfs) {
    if (udf->name() == name) return udf.get();
  }
  return nullptr;
}

RealUdfSuite MakeRealUdfSuite(SubstrateScale scale, uint64_t seed) {
  RealUdfSuite suite;

  CorpusConfig corpus;
  SpatialDatasetConfig spatial;
  int grid_size = 64;
  int64_t pool_pages = 1024;
  if (scale == SubstrateScale::kSmall) {
    corpus.num_docs = 2000;
    corpus.vocab_size = 2000;
    spatial.num_rects = 3000;
    spatial.num_clusters = 10;
    grid_size = 32;
    pool_pages = 128;
  }
  corpus.seed ^= seed;
  spatial.seed ^= seed;

  suite.text_engine = std::make_shared<TextSearchEngine>(corpus, pool_pages);
  suite.spatial_engine =
      std::make_shared<SpatialEngine>(spatial, grid_size, pool_pages);

  suite.udfs.push_back(std::make_unique<SimpleSearchUdf>(suite.text_engine));
  suite.udfs.push_back(std::make_unique<ThresholdSearchUdf>(suite.text_engine));
  suite.udfs.push_back(std::make_unique<ProximitySearchUdf>(suite.text_engine));
  suite.udfs.push_back(std::make_unique<KnnUdf>(suite.spatial_engine));
  suite.udfs.push_back(std::make_unique<WindowUdf>(suite.spatial_engine));
  suite.udfs.push_back(std::make_unique<RangeSearchUdf>(suite.spatial_engine));
  return suite;
}

std::vector<EvalResult> CompareAllMethods(CostedUdf& udf,
                                          std::span<const Point> training,
                                          std::span<const Point> test,
                                          CostKind cost_kind,
                                          int64_t memory_limit_bytes,
                                          int learning_curve_window) {
  const Box space = udf.model_space();
  EvalOptions options;
  options.cost_kind = cost_kind;
  options.learning_curve_window = learning_curve_window;

  std::vector<EvalResult> results;

  // MLQ-E and MLQ-L: self-tuning, no a-priori training.
  for (InsertionStrategy strategy :
       {InsertionStrategy::kEager, InsertionStrategy::kLazy}) {
    udf.ResetState();
    MlqModel model(space,
                   MakePaperMlqConfig(strategy, cost_kind, memory_limit_bytes));
    results.push_back(RunSelfTuningEvaluation(model, udf, test, options));
  }

  // SH-H and SH-W: trained a-priori on the training workload.
  {
    udf.ResetState();
    EquiHeightHistogram model(space, memory_limit_bytes);
    results.push_back(RunStaticEvaluation(model, udf, training, test, options));
  }
  {
    udf.ResetState();
    EquiWidthHistogram model(space, memory_limit_bytes);
    results.push_back(RunStaticEvaluation(model, udf, training, test, options));
  }

  // Order: MLQ-E, MLQ-L, SH-H, SH-W.
  return results;
}

std::vector<Point> MakePaperWorkload(const Box& space,
                                     QueryDistributionKind kind, int num_points,
                                     uint64_t seed) {
  WorkloadConfig config;
  config.kind = kind;
  config.num_points = num_points;
  config.num_centroids = kPaperNumCentroids;
  config.stddev_frac = kPaperStddevFrac;
  config.seed = seed;
  return GenerateQueryPoints(space, config);
}

TrainTestWorkload MakePaperTrainTestWorkloads(const Box& space,
                                              QueryDistributionKind kind,
                                              int num_training_points,
                                              int num_test_points,
                                              uint64_t seed) {
  WorkloadConfig config;
  config.kind = kind;
  config.num_centroids = kPaperNumCentroids;
  config.stddev_frac = kPaperStddevFrac;
  config.seed = seed;
  return GenerateTrainTestWorkloads(space, config, num_training_points,
                                    num_test_points);
}

}  // namespace mlq
