#ifndef MLQ_EVAL_METRICS_H_
#define MLQ_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace mlq {

// Accumulates the normalized absolute error of Eq. 10:
//   NAE(Q) = sum_q |PC(q) - AC(q)| / sum_q AC(q).
// Robust where relative error is not (low-cost points) and comparable
// across UDFs/datasets where plain absolute error is not.
class NaeAccumulator {
 public:
  void Add(double predicted, double actual) {
    const double diff = predicted - actual;
    abs_error_sum_ += diff < 0 ? -diff : diff;
    actual_sum_ += actual;
    ++count_;
  }

  // NAE over everything added so far; 0 when nothing was added. When the
  // actual costs sum to zero the error is reported per-query unnormalized
  // (the denominator of Eq. 10 degenerates).
  double Nae() const {
    if (count_ == 0) return 0.0;
    if (actual_sum_ <= 0.0) return abs_error_sum_ / static_cast<double>(count_);
    return abs_error_sum_ / actual_sum_;
  }

  int64_t count() const { return count_; }
  double abs_error_sum() const { return abs_error_sum_; }
  double actual_sum() const { return actual_sum_; }

  void Reset() {
    abs_error_sum_ = 0.0;
    actual_sum_ = 0.0;
    count_ = 0;
  }

 private:
  double abs_error_sum_ = 0.0;
  double actual_sum_ = 0.0;
  int64_t count_ = 0;
};

// Windowed NAE series for the learning-curve experiment (Fig. 12): one NAE
// value per consecutive window of `window_size` queries.
class LearningCurve {
 public:
  explicit LearningCurve(int window_size) : window_size_(window_size) {}

  void Add(double predicted, double actual) {
    window_.Add(predicted, actual);
    if (window_.count() >= window_size_) Flush();
  }

  // Closes a partial trailing window, if any.
  void Finish() {
    if (window_.count() > 0) Flush();
  }

  const std::vector<double>& series() const { return series_; }
  int window_size() const { return window_size_; }

 private:
  void Flush() {
    series_.push_back(window_.Nae());
    window_.Reset();
  }

  int window_size_;
  NaeAccumulator window_;
  std::vector<double> series_;
};

}  // namespace mlq

#endif  // MLQ_EVAL_METRICS_H_
