#include "eval/drift_scenario.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "eval/metrics.h"

namespace mlq {
namespace {

// Two-peak Gaussian cost surface over [0, 1000]^2; smooth enough for a
// depth-6 quadtree to approximate well, structured enough that a stale
// model is measurably wrong after the surface moves.
struct SurfacePeak {
  double cx, cy, height, sigma;
};
constexpr SurfacePeak kPeaks[] = {
    {300.0, 300.0, 150.0, 150.0},
    {700.0, 650.0, 90.0, 150.0},
};
constexpr double kBaseCost = 20.0;

// Surface multiplier at stream position `t`.
double ScaleAt(int64_t t, const DriftScenarioOptions& options) {
  if (t < options.pre_drift_queries) return 1.0;
  if (options.shape == DriftShape::kAbruptStep) return options.cost_scale_after;
  const double progress = std::min(
      1.0, static_cast<double>(t - options.pre_drift_queries) /
               static_cast<double>(std::max(options.ramp_queries, 1)));
  return 1.0 + (options.cost_scale_after - 1.0) * progress;
}

}  // namespace

Box DriftSurfaceSpace() {
  Point lo(2);
  Point hi(2);
  lo[0] = lo[1] = 0.0;
  hi[0] = hi[1] = 1000.0;
  return Box(lo, hi);
}

double DriftSurfaceBaseCost(const Point& q) {
  double cost = kBaseCost;
  for (const SurfacePeak& peak : kPeaks) {
    const double dx = q[0] - peak.cx;
    const double dy = q[1] - peak.cy;
    cost += peak.height *
            std::exp(-(dx * dx + dy * dy) / (2.0 * peak.sigma * peak.sigma));
  }
  return cost;
}

DriftScenarioResult RunDriftScenario(CostModel& model,
                                     const DriftScenarioOptions& options) {
  const Box space = DriftSurfaceSpace();
  DriftDetector detector(options.detector);
  DriftScenarioResult result;

  const int64_t total = static_cast<int64_t>(options.pre_drift_queries) +
                        options.post_drift_queries;
  const int64_t warmup = options.pre_drift_queries / 2;
  const int64_t tail_start = total - options.post_drift_queries / 4;

  Rng rng(options.seed);
  LearningCurve curve(std::max(options.window, 1));
  NaeAccumulator pre_drift;
  NaeAccumulator tail;
  NaeAccumulator drift_window;  // Current options.window-sized slice.

  for (int64_t t = 0; t < total; ++t) {
    Point q(space.dims());
    for (int d = 0; d < space.dims(); ++d) {
      q[d] = rng.Uniform(space.lo()[d], space.hi()[d]);
    }
    const double actual = DriftSurfaceBaseCost(q) * ScaleAt(t, options);
    const double predicted = model.Predict(q);

    curve.Add(predicted, actual);
    if (t >= warmup && t < options.pre_drift_queries) {
      pre_drift.Add(predicted, actual);
    }
    if (t >= tail_start) tail.Add(predicted, actual);
    if (t >= options.pre_drift_queries) {
      drift_window.Add(predicted, actual);
      if (drift_window.count() >= options.window) {
        result.worst_post_drift_nae =
            std::max(result.worst_post_drift_nae, drift_window.Nae());
        drift_window.Reset();
      }
    }

    model.Observe(q, actual);

    const DriftKind kind = detector.Observe(predicted, actual);
    if (kind != DriftKind::kNone) {
      if (result.first_fire_query < 0 && t >= options.pre_drift_queries) {
        result.first_fire_query = t;
        result.first_fire_kind = kind;
      }
      const int64_t burst = kind == DriftKind::kAbrupt
                                ? options.abrupt_drift_epochs
                                : options.gradual_drift_epochs;
      if (burst > 0) {
        model.AdvanceDecayEpoch(burst);
        result.decay_epochs_advanced += burst;
      }
    }
    if (options.queries_per_decay_epoch > 0 &&
        (t + 1) % options.queries_per_decay_epoch == 0) {
      model.AdvanceDecayEpoch(1);
      ++result.decay_epochs_advanced;
    }
  }

  if (drift_window.count() > 0) {
    result.worst_post_drift_nae =
        std::max(result.worst_post_drift_nae, drift_window.Nae());
  }
  curve.Finish();
  result.nae_windows = curve.series();
  result.pre_drift_nae = pre_drift.Nae();
  result.final_nae = tail.Nae();
  result.detector_firings = detector.drift_count();
  result.num_queries = total;
  return result;
}

}  // namespace mlq
