#include "eval/csv_export.h"

#include <ostream>

namespace mlq {
namespace {

// Quotes a CSV field if needed (our names never contain quotes/commas, but
// be defensive for user-supplied UDF names).
std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void WriteEvalResultsCsv(std::ostream& os,
                         std::span<const EvalResult> results) {
  os << "model,udf,num_queries,nae,apc_us,ic_us,cc_us,auc_us,compressions,"
        "pc_over_udf,muc_over_udf\n";
  for (const EvalResult& r : results) {
    os << CsvField(r.model_name) << ',' << CsvField(r.udf_name) << ','
       << r.num_queries << ',' << r.nae << ',' << r.apc_micros << ','
       << r.ic_micros << ',' << r.cc_micros << ',' << r.auc_micros << ','
       << r.compressions << ',' << r.PcOverUdf() << ',' << r.MucOverUdf()
       << '\n';
  }
}

void WriteLearningCurvesCsv(std::ostream& os,
                            std::span<const EvalResult> results,
                            int window_size) {
  os << "model,udf,window_index,queries_processed,window_nae\n";
  for (const EvalResult& r : results) {
    for (size_t w = 0; w < r.learning_curve.size(); ++w) {
      os << CsvField(r.model_name) << ',' << CsvField(r.udf_name) << ','
         << w + 1 << ',' << (w + 1) * static_cast<size_t>(window_size) << ','
         << r.learning_curve[w] << '\n';
    }
  }
}

}  // namespace mlq
