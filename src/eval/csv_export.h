#ifndef MLQ_EVAL_CSV_EXPORT_H_
#define MLQ_EVAL_CSV_EXPORT_H_

#include <iosfwd>
#include <span>

#include "eval/evaluator.h"

namespace mlq {

// CSV export of experiment results, for plotting the figures outside the
// terminal (gnuplot / pandas). Columns are stable and documented here so
// downstream scripts can rely on them.

// One row per result:
// model,udf,num_queries,nae,apc_us,ic_us,cc_us,auc_us,compressions,
// pc_over_udf,muc_over_udf
void WriteEvalResultsCsv(std::ostream& os, std::span<const EvalResult> results);

// One row per learning-curve window:
// model,udf,window_index,queries_processed,window_nae
void WriteLearningCurvesCsv(std::ostream& os,
                            std::span<const EvalResult> results,
                            int window_size);

}  // namespace mlq

#endif  // MLQ_EVAL_CSV_EXPORT_H_
