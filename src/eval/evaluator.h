#ifndef MLQ_EVAL_EVALUATOR_H_
#define MLQ_EVAL_EVALUATOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "model/cost_model.h"
#include "model/static_histogram.h"
#include "udf/costed_udf.h"

namespace mlq {

// Options shared by both evaluation loops.
struct EvalOptions {
  // Which cost the model predicts (the paper keeps CPU and IO models
  // separate).
  CostKind cost_kind = CostKind::kCpu;
  // Learning-curve granularity (queries per NAE window, Fig. 12).
  int learning_curve_window = 250;
};

// Everything the experiments report about one (model, UDF, workload) run.
struct EvalResult {
  std::string model_name;
  std::string udf_name;
  int64_t num_queries = 0;

  // Prediction accuracy (Eq. 10).
  double nae = 0.0;

  // APC (Eq. 1) and AUC (Eq. 2), in microseconds. AUC splits into insertion
  // (ic) and compression (cc) components; static models report zeros.
  double apc_micros = 0.0;
  double auc_micros = 0.0;
  double ic_micros = 0.0;
  double cc_micros = 0.0;
  int64_t compressions = 0;

  // Total *nominal* UDF execution cost over the workload, in microseconds
  // (work units and page misses mapped through the scales in
  // common/timer.h); the denominator for Fig. 10's overhead ratios.
  double total_udf_micros = 0.0;
  // Total actual modeling time, in seconds, split as in Fig. 10.
  double total_prediction_seconds = 0.0;
  double total_update_seconds = 0.0;

  // Windowed NAE over the stream (Fig. 12).
  std::vector<double> learning_curve;

  // Fig. 10 bars: modeling overheads as fractions of total UDF execution
  // cost (PC, IC, CC, MUC = IC + CC).
  double PcOverUdf() const;
  double IcOverUdf() const;
  double CcOverUdf() const;
  double MucOverUdf() const;
};

// Self-tuning loop (Fig. 1 of the paper): for every query point, the model
// predicts, the UDF executes, the error is recorded, and the actual cost is
// fed back into the model.
EvalResult RunSelfTuningEvaluation(CostModel& model, CostedUdf& udf,
                                   std::span<const Point> queries,
                                   const EvalOptions& options);

// Static (SH) protocol: the model trains a-priori on `training` points
// drawn from the same distribution as `test` — executing the UDF to obtain
// training costs — and then predicts the test stream without any feedback.
EvalResult RunStaticEvaluation(StaticHistogram& model, CostedUdf& udf,
                               std::span<const Point> training,
                               std::span<const Point> test,
                               const EvalOptions& options);

// Executes the UDF at every point and returns the observed costs of the
// requested kind (helper for training and analysis).
std::vector<double> ExecuteAll(CostedUdf& udf, std::span<const Point> points,
                               CostKind kind);

}  // namespace mlq

#endif  // MLQ_EVAL_EVALUATOR_H_
