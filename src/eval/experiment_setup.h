#ifndef MLQ_EVAL_EXPERIMENT_SETUP_H_
#define MLQ_EVAL_EXPERIMENT_SETUP_H_

#include <memory>
#include <span>
#include <vector>

#include "eval/evaluator.h"
#include "quadtree/quadtree_config.h"
#include "spatial/spatial_udfs.h"
#include "synthetic/synthetic_udf.h"
#include "text/text_udfs.h"
#include "udf/costed_udf.h"
#include "workload/query_distribution.h"

namespace mlq {

// Paper-wide experimental constants (Section 5.1).
inline constexpr int64_t kPaperMemoryBytes = 1800;
inline constexpr int kPaperSyntheticQueries = 5000;
inline constexpr int kPaperRealQueries = 2500;
inline constexpr int kPaperNumCentroids = 3;
inline constexpr double kPaperStddevFrac = 0.05;
inline constexpr int64_t kPaperBetaCpu = 1;
inline constexpr int64_t kPaperBetaIo = 10;

// MLQ parameters as tuned in the paper: alpha = 0.05, gamma = 0.1%,
// lambda = 6, beta depending on the cost kind.
MlqConfig MakePaperMlqConfig(InsertionStrategy strategy, CostKind cost_kind,
                             int64_t memory_limit_bytes = kPaperMemoryBytes);

// Synthetic UDF with the paper's surface parameters (d = 4, range 0..1000,
// max height 10000, Zipf z = 1, D = 10% of the diagonal).
std::unique_ptr<SyntheticUdf> MakePaperSyntheticUdf(int num_peaks,
                                                    double noise_probability,
                                                    uint64_t seed);

// How big to build the "real" UDF substrates. kFull mirrors the paper's
// datasets (36,422 documents); kSmall is for unit tests and smoke runs.
enum class SubstrateScale {
  kSmall,
  kFull,
};

// The six real UDFs of Section 5.1 over shared text and spatial engines.
// Order: SIMPLE, THRESH, PROX, KNN, WIN, RANGE (the paper's listing).
struct RealUdfSuite {
  std::shared_ptr<TextSearchEngine> text_engine;
  std::shared_ptr<SpatialEngine> spatial_engine;
  std::vector<std::unique_ptr<CostedUdf>> udfs;

  CostedUdf* Find(std::string_view name) const;
};

RealUdfSuite MakeRealUdfSuite(SubstrateScale scale, uint64_t seed = 1);

// Runs all four paper methods (MLQ-E, MLQ-L, SH-H, SH-W) over the same UDF
// and test workload at the same memory budget and returns their results in
// that order. SH methods are trained on `training` (same distribution as
// `test`, per the paper's protocol); the UDF state (caches) is reset before
// every method so each sees an identical substrate.
std::vector<EvalResult> CompareAllMethods(CostedUdf& udf,
                                          std::span<const Point> training,
                                          std::span<const Point> test,
                                          CostKind cost_kind,
                                          int64_t memory_limit_bytes,
                                          int learning_curve_window = 250);

// Convenience: workload of the paper's shape for a UDF's model space.
std::vector<Point> MakePaperWorkload(const Box& space,
                                     QueryDistributionKind kind, int num_points,
                                     uint64_t seed);

// Training + test workloads from the same distribution (shared centroids,
// independent draws) — the paper's protocol for the SH baselines.
TrainTestWorkload MakePaperTrainTestWorkloads(const Box& space,
                                              QueryDistributionKind kind,
                                              int num_training_points,
                                              int num_test_points,
                                              uint64_t seed);

}  // namespace mlq

#endif  // MLQ_EVAL_EXPERIMENT_SETUP_H_
