#ifndef MLQ_EVAL_TRACE_H_
#define MLQ_EVAL_TRACE_H_

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "model/cost_model.h"
#include "udf/costed_udf.h"

namespace mlq {

// Execution traces: the portable interchange format between a production
// system ("log every UDF call's model point and observed costs") and this
// library ("replay the log into a model and evaluate it"). The text format
// is deliberately trivial:
//
//   # mlq-trace v1 dims=3
//   12.5,881.0,3.0,1520.0,7.0     <- x0..x{d-1}, cpu_cost, io_cost
//   ...
//
// Lines starting with '#' after the header are comments.

struct TraceRecord {
  Point point;
  double cpu_cost = 0.0;
  double io_cost = 0.0;
};

// Writes a trace. Records must all share the header's dimensionality.
void WriteTrace(std::ostream& os, std::span<const TraceRecord> records,
                int dims);

// Parses a trace; returns false and sets *error on malformed input.
bool ReadTrace(std::istream& is, std::vector<TraceRecord>* records,
               std::string* error);

// Runs `udf` over `points` and captures a trace.
std::vector<TraceRecord> CaptureTrace(CostedUdf& udf,
                                      std::span<const Point> points);

// Replays a trace into a self-tuning model (predict-then-observe), and
// returns the NAE over the replay — evaluation without re-running the UDF.
double ReplayTrace(CostModel& model, std::span<const TraceRecord> records,
                   CostKind cost_kind);

// Block-batched replay: per block of `block_size` records, one PredictBatch
// (all predictions made *before* any of the block's feedback lands, as a
// batching executor would) followed by one ObserveBatch. The model's final
// insert sequence is identical to ReplayTrace; the NAE can differ slightly
// because within-block predictions no longer see earlier rows of the same
// block. Returns the NAE.
double ReplayTraceBatched(CostModel& model,
                          std::span<const TraceRecord> records,
                          CostKind cost_kind, int block_size);

// Bulk-loads a trace into a model as feedback only (no predictions): one
// ObserveBatch per chunk. The warm-start path for eval drivers and tools.
void IngestTrace(CostModel& model, std::span<const TraceRecord> records,
                 CostKind cost_kind, int chunk_size = 512);

}  // namespace mlq

#endif  // MLQ_EVAL_TRACE_H_
