#include "eval/trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "eval/metrics.h"

namespace mlq {

void WriteTrace(std::ostream& os, std::span<const TraceRecord> records,
                int dims) {
  os << "# mlq-trace v1 dims=" << dims << '\n';
  char buf[64];
  for (const TraceRecord& record : records) {
    assert(record.point.dims() == dims);
    for (int d = 0; d < dims; ++d) {
      std::snprintf(buf, sizeof(buf), "%.17g,", record.point[d]);
      os << buf;
    }
    std::snprintf(buf, sizeof(buf), "%.17g,%.17g\n", record.cpu_cost,
                  record.io_cost);
    os << buf;
  }
}

bool ReadTrace(std::istream& is, std::vector<TraceRecord>* records,
               std::string* error) {
  records->clear();
  std::string line;
  if (!std::getline(is, line)) {
    *error = "empty trace";
    return false;
  }
  int dims = 0;
  if (std::sscanf(line.c_str(), "# mlq-trace v1 dims=%d", &dims) != 1 ||
      dims < 1 || dims > kMaxDims) {
    *error = "bad trace header: " + line;
    return false;
  }
  int line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    TraceRecord record;
    record.point = Point(dims);
    std::string field;
    for (int d = 0; d < dims + 2; ++d) {
      if (!std::getline(fields, field, ',')) {
        *error = "line " + std::to_string(line_number) + ": too few fields";
        return false;
      }
      char* end = nullptr;
      const double value = std::strtod(field.c_str(), &end);
      if (end == field.c_str()) {
        *error = "line " + std::to_string(line_number) + ": bad number '" +
                 field + "'";
        return false;
      }
      if (d < dims) {
        record.point[d] = value;
      } else if (d == dims) {
        record.cpu_cost = value;
      } else {
        record.io_cost = value;
      }
    }
    if (std::getline(fields, field, ',')) {
      *error = "line " + std::to_string(line_number) + ": too many fields";
      return false;
    }
    records->push_back(record);
  }
  return true;
}

std::vector<TraceRecord> CaptureTrace(CostedUdf& udf,
                                      std::span<const Point> points) {
  std::vector<TraceRecord> records;
  records.reserve(points.size());
  for (const Point& p : points) {
    const UdfCost cost = udf.Execute(p);
    records.push_back(TraceRecord{p, cost.cpu_work, cost.io_pages});
  }
  return records;
}

double ReplayTrace(CostModel& model, std::span<const TraceRecord> records,
                   CostKind cost_kind) {
  NaeAccumulator nae;
  for (const TraceRecord& record : records) {
    const double actual =
        cost_kind == CostKind::kCpu ? record.cpu_cost : record.io_cost;
    nae.Add(model.Predict(record.point), actual);
    model.Observe(record.point, actual);
  }
  return nae.Nae();
}

double ReplayTraceBatched(CostModel& model,
                          std::span<const TraceRecord> records,
                          CostKind cost_kind, int block_size) {
  assert(block_size >= 1);
  NaeAccumulator nae;
  std::vector<Point> points;
  std::vector<Prediction> predictions;
  std::vector<Observation> feedback;
  for (size_t begin = 0; begin < records.size();
       begin += static_cast<size_t>(block_size)) {
    const size_t end =
        std::min(records.size(), begin + static_cast<size_t>(block_size));
    points.clear();
    feedback.clear();
    for (size_t i = begin; i < end; ++i) {
      const double actual = cost_kind == CostKind::kCpu ? records[i].cpu_cost
                                                        : records[i].io_cost;
      points.push_back(records[i].point);
      feedback.push_back({records[i].point, actual});
    }
    predictions.resize(points.size());
    model.PredictBatch(points, predictions);
    for (size_t k = 0; k < predictions.size(); ++k) {
      nae.Add(predictions[k].value, feedback[k].value);
    }
    model.ObserveBatch(feedback);
  }
  return nae.Nae();
}

void IngestTrace(CostModel& model, std::span<const TraceRecord> records,
                 CostKind cost_kind, int chunk_size) {
  assert(chunk_size >= 1);
  std::vector<Observation> chunk;
  chunk.reserve(static_cast<size_t>(chunk_size));
  for (size_t begin = 0; begin < records.size();
       begin += static_cast<size_t>(chunk_size)) {
    const size_t end =
        std::min(records.size(), begin + static_cast<size_t>(chunk_size));
    chunk.clear();
    for (size_t i = begin; i < end; ++i) {
      chunk.push_back({records[i].point, cost_kind == CostKind::kCpu
                                             ? records[i].cpu_cost
                                             : records[i].io_cost});
    }
    model.ObserveBatch(chunk);
  }
}

}  // namespace mlq
