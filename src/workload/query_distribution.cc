#include "workload/query_distribution.h"

#include <algorithm>
#include <cassert>

namespace mlq {
namespace {

Point UniformPoint(const Box& space, Rng& rng) {
  Point p(space.dims());
  for (int d = 0; d < space.dims(); ++d) {
    p[d] = rng.Uniform(space.lo()[d], space.hi()[d]);
  }
  return p;
}

Point GaussianPoint(const Box& space, const Point& centroid, double stddev_frac,
                    Rng& rng) {
  Point p(space.dims());
  for (int d = 0; d < space.dims(); ++d) {
    const double sigma = stddev_frac * space.Extent(d);
    p[d] = std::clamp(rng.Gaussian(centroid[d], sigma), space.lo()[d],
                      space.hi()[d]);
  }
  return p;
}

std::vector<Point> MakeCentroids(const Box& space, int count, Rng& rng) {
  std::vector<Point> centroids;
  centroids.reserve(static_cast<size_t>(count));
  for (int c = 0; c < count; ++c) centroids.push_back(UniformPoint(space, rng));
  return centroids;
}

}  // namespace

std::string_view QueryDistributionKindName(QueryDistributionKind kind) {
  switch (kind) {
    case QueryDistributionKind::kUniform:
      return "uniform";
    case QueryDistributionKind::kGaussianRandom:
      return "gauss-random";
    case QueryDistributionKind::kGaussianSequential:
      return "gauss-sequential";
  }
  return "unknown";
}

namespace {

// Core sampler: `centroids` are already fixed; `rng` drives the sample
// draws only.
std::vector<Point> SamplePoints(const Box& space, const WorkloadConfig& config,
                                int num_points,
                                const std::vector<Point>& centroids, Rng& rng) {
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(num_points));
  switch (config.kind) {
    case QueryDistributionKind::kUniform: {
      for (int i = 0; i < num_points; ++i) {
        points.push_back(UniformPoint(space, rng));
      }
      break;
    }
    case QueryDistributionKind::kGaussianRandom: {
      for (int i = 0; i < num_points; ++i) {
        const auto c = static_cast<size_t>(
            rng.UniformInt(0, config.num_centroids - 1));
        points.push_back(
            GaussianPoint(space, centroids[c], config.stddev_frac, rng));
      }
      break;
    }
    case QueryDistributionKind::kGaussianSequential: {
      // c centroids visited in turn, n/c consecutive queries each (the
      // remainder goes to the last centroid).
      const int per_centroid = num_points / config.num_centroids;
      for (int c = 0; c < config.num_centroids; ++c) {
        const int count = (c == config.num_centroids - 1)
                              ? num_points - per_centroid * c
                              : per_centroid;
        for (int i = 0; i < count; ++i) {
          points.push_back(GaussianPoint(space, centroids[static_cast<size_t>(c)],
                                         config.stddev_frac, rng));
        }
      }
      break;
    }
  }
  return points;
}

}  // namespace

std::vector<Point> GenerateQueryPoints(const Box& space,
                                       const WorkloadConfig& config) {
  assert(config.num_points >= 0);
  Rng rng(config.seed);
  const std::vector<Point> centroids =
      MakeCentroids(space, config.num_centroids, rng);
  return SamplePoints(space, config, config.num_points, centroids, rng);
}

TrainTestWorkload GenerateTrainTestWorkloads(const Box& space,
                                             const WorkloadConfig& config,
                                             int num_training_points,
                                             int num_test_points) {
  Rng centroid_rng(config.seed);
  const std::vector<Point> centroids =
      MakeCentroids(space, config.num_centroids, centroid_rng);
  TrainTestWorkload out;
  Rng training_rng(config.seed ^ 0x7261696eULL);  // "rain"
  out.training = SamplePoints(space, config, num_training_points, centroids,
                              training_rng);
  Rng test_rng(config.seed ^ 0x74657374ULL);  // "test"
  out.test = SamplePoints(space, config, num_test_points, centroids, test_rng);
  return out;
}

std::vector<Point> GenerateDriftingWorkload(const Box& space, int num_points,
                                            int num_phases, int num_centroids,
                                            double stddev_frac, uint64_t seed) {
  assert(num_phases >= 1);
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(num_points));
  const int per_phase = num_points / num_phases;
  for (int phase = 0; phase < num_phases; ++phase) {
    const std::vector<Point> centroids =
        MakeCentroids(space, num_centroids, rng);
    const int count = (phase == num_phases - 1) ? num_points - per_phase * phase
                                                : per_phase;
    for (int i = 0; i < count; ++i) {
      const auto c = static_cast<size_t>(rng.UniformInt(0, num_centroids - 1));
      points.push_back(GaussianPoint(space, centroids[c], stddev_frac, rng));
    }
  }
  return points;
}

}  // namespace mlq
