#ifndef MLQ_WORKLOAD_QUERY_DISTRIBUTION_H_
#define MLQ_WORKLOAD_QUERY_DISTRIBUTION_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"

namespace mlq {

// The three query-point distributions of Section 5.1.
enum class QueryDistributionKind {
  // Points uniform over the whole model space.
  kUniform,
  // c Gaussian centroids placed uniformly; every query picks a random
  // centroid and scatters around it.
  kGaussianRandom,
  // Same centroids, but visited one after another: n/c consecutive queries
  // per centroid. This is the workload whose *locality shifts over time*,
  // stressing self-tuning.
  kGaussianSequential,
};

std::string_view QueryDistributionKindName(QueryDistributionKind kind);

// Workload-generation parameters; defaults are the paper's (c = 3 clusters,
// sigma = 5% of each dimension's extent).
struct WorkloadConfig {
  QueryDistributionKind kind = QueryDistributionKind::kUniform;
  int num_points = 5000;
  int num_centroids = 3;
  // Gaussian scatter per dimension, as a fraction of that dimension extent.
  double stddev_frac = 0.05;
  uint64_t seed = 42;
};

// Generates `config.num_points` query points inside `space` (coordinates
// clamped into the space).
std::vector<Point> GenerateQueryPoints(const Box& space,
                                       const WorkloadConfig& config);

// A training workload and a test workload drawn from the *same*
// distribution — same centroid set, independent samples — which is the
// paper's protocol for the static SH methods ("trained a-priori with a set
// of queries that has the same distribution as the set used for testing").
// The Gaussian centroids are fixed by config.seed; the two sample streams
// are independent.
struct TrainTestWorkload {
  std::vector<Point> training;
  std::vector<Point> test;
};

TrainTestWorkload GenerateTrainTestWorkloads(const Box& space,
                                             const WorkloadConfig& config,
                                             int num_training_points,
                                             int num_test_points);

// A drifting workload for the adaptation experiments: the stream is split
// into `num_phases` equal phases, each using a fresh, independently placed
// set of Gaussian centroids. Static models trained on phase 0 go stale;
// self-tuning models follow the drift.
std::vector<Point> GenerateDriftingWorkload(const Box& space, int num_points,
                                            int num_phases, int num_centroids,
                                            double stddev_frac, uint64_t seed);

}  // namespace mlq

#endif  // MLQ_WORKLOAD_QUERY_DISTRIBUTION_H_
