#include "model/sharded_model.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "obs/obs.h"
#include "quadtree/quadtree_config.h"

namespace mlq {
namespace {

// splitmix64 finalizer: good avalanche for the cheap per-dimension mixes.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

MlqConfig ShardConfig(const MlqConfig& config, int num_shards) {
  MlqConfig shard_config = config;
  // Split the budget evenly; every shard needs at least a root and a
  // couple of children to be a model at all.
  shard_config.memory_limit_bytes =
      std::max<int64_t>(config.memory_limit_bytes / num_shards,
                        kNodeBaseBytes + 2 * kNonRootNodeBytes);
  return shard_config;
}

}  // namespace

ShardedCostModel::ShardedCostModel(const Box& space, const MlqConfig& config,
                                   const ShardedModelOptions& options)
    : options_(options), space_(space) {
  options_.num_shards = std::max(options_.num_shards, 1);
  const int depth_bits = std::clamp(config.max_depth, 1, 30);
  cells_per_dim_ = int64_t{1} << depth_bits;

  const MlqConfig shard_config = ShardConfig(config, options_.num_shards);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        space, shard_config, options_.queue_capacity, options_.arena));
  }
  name_ = "MLQ-Sx" + std::to_string(options_.num_shards);

  if (options_.background_drain) {
    drainer_ = std::thread([this]() {
      std::unique_lock<std::mutex> lock(drainer_mutex_);
      while (!stop_drainer_) {
        drainer_cv_.wait_for(
            lock, std::chrono::microseconds(options_.drain_interval_micros));
        if (stop_drainer_) break;
        lock.unlock();
        Flush();
        lock.lock();
      }
    });
  }
}

ShardedCostModel::~ShardedCostModel() {
  if (drainer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(drainer_mutex_);
      stop_drainer_ = true;
    }
    drainer_cv_.notify_all();
    drainer_.join();
  }
}

int ShardedCostModel::ShardOf(const Point& point) const {
  // Hash of the quantized point: the finest-resolution grid cell the tree
  // can distinguish (2^max_depth cells per dimension). All points inside
  // one leaf-size block share a cell, hence a shard.
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int d = 0; d < space_.dims(); ++d) {
    const double lo = space_.lo()[d];
    const double extent = space_.Extent(d);
    double t = 0.0;
    if (extent > 0.0) {
      t = (std::clamp(point[d], lo, space_.hi()[d]) - lo) / extent;
    }
    auto cell = static_cast<int64_t>(t * static_cast<double>(cells_per_dim_));
    cell = std::clamp<int64_t>(cell, 0, cells_per_dim_ - 1);
    h = Mix64(h ^ static_cast<uint64_t>(cell));
  }
  return static_cast<int>(h % static_cast<uint64_t>(shards_.size()));
}

void ShardedCostModel::DrainLocked(Shard& shard) const {
  // The hint is exact for the calling thread's own pushes, so skipping the
  // queue-lock round-trip here never reorders a producer against itself.
  if (shard.queue.AppearsEmpty()) return;
  shard.drain_buffer.clear();
  shard.queue.PopBatch(&shard.drain_buffer);
  // One batched tree entry for the whole backlog: every drain trigger
  // (predict-side, opportunistic, Flush, background) rides the amortized
  // path. Insert order — hence the tree — is unchanged.
  shard.model.ObserveBatch(shard.drain_buffer);
  shard.applied += static_cast<int64_t>(shard.drain_buffer.size());
  const auto applied = static_cast<int64_t>(shard.drain_buffer.size());
  if (applied > 0 && obs::Enabled()) {
    obs::Core().feedback_applied.Inc(applied);
    MLQ_TRACE_EVENT(obs::TraceEventType::kFeedbackDrain, obs::NowNs(), 0,
                    static_cast<double>(applied), 0.0);
  }
  shard.drain_buffer.clear();
}

double ShardedCostModel::Predict(const Point& point) const {
  return PredictDetailed(point).value;
}

Prediction ShardedCostModel::PredictDetailed(const Point& point) const {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(point))];
  const bool obs_on = obs::Enabled();
  const int64_t wait_t0 = obs_on ? obs::NowNs() : 0;
  std::lock_guard<std::mutex> lock(shard.model_mutex);
  if (obs_on) obs::Core().lock_wait_ns.Record(obs::NowNs() - wait_t0);
  if (options_.drain_on_predict) DrainLocked(shard);
  ++shard.predictions;
  return shard.model.PredictDetailed(point);
}

void ShardedCostModel::PredictBatch(std::span<const Point> points,
                                    std::span<Prediction> out) const {
  assert(points.size() == out.size());
  // Bucket positions by shard so each shard is visited once. Batches are
  // planner-sized (tens to a few hundred points); two scratch vectors per
  // call beat taking a shard lock per point.
  std::vector<std::vector<uint32_t>> buckets(shards_.size());
  for (size_t i = 0; i < points.size(); ++i) {
    buckets[static_cast<size_t>(ShardOf(points[i]))].push_back(
        static_cast<uint32_t>(i));
  }
  const bool obs_on = obs::Enabled();
  std::vector<Point> gathered;
  std::vector<Prediction> results;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<uint32_t>& bucket = buckets[s];
    if (bucket.empty()) continue;
    gathered.clear();
    gathered.reserve(bucket.size());
    for (uint32_t i : bucket) gathered.push_back(points[i]);
    results.resize(bucket.size());

    Shard& shard = *shards_[s];
    const int64_t wait_t0 = obs_on ? obs::NowNs() : 0;
    std::lock_guard<std::mutex> lock(shard.model_mutex);
    if (obs_on) obs::Core().lock_wait_ns.Record(obs::NowNs() - wait_t0);
    if (options_.drain_on_predict) DrainLocked(shard);
    shard.predictions += static_cast<int64_t>(bucket.size());
    shard.model.PredictBatch(gathered, results);
    for (size_t k = 0; k < bucket.size(); ++k) out[bucket[k]] = results[k];
  }
}

CostEstimate ShardedCostModel::PredictStats(const Point& point) const {
  return CostEstimate::FromPrediction(PredictDetailed(point));
}

void ShardedCostModel::PredictStatsBatch(std::span<const Point> points,
                                         std::span<CostEstimate> out) const {
  assert(points.size() == out.size());
  // Reuse the shard-bucketed batch descent — per-point stddev/count travel
  // through the same gather/scatter, so out[i] is exactly
  // PredictStats(points[i]) would have been (modulo drain interleaving).
  std::vector<Prediction> scratch(points.size());
  PredictBatch(points, scratch);
  for (size_t i = 0; i < points.size(); ++i) {
    out[i] = CostEstimate::FromPrediction(scratch[i]);
  }
}

void ShardedCostModel::Observe(const Point& point, double actual_cost) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(point))];
  const bool dropped = !shard.queue.Push(Observation{point, actual_cost});
  if (obs::Enabled()) {
    obs::CoreMetrics& core = obs::Core();
    core.feedback_enqueued.Inc();
    if (dropped) {
      core.feedback_dropped.Inc();
      MLQ_TRACE_EVENT(obs::TraceEventType::kFeedbackDrop, obs::NowNs(), 0,
                      static_cast<double>(shard.queue.size()), 0.0);
    }
  }
  if (options_.drain_batch > 0 && shard.queue.size() >= options_.drain_batch) {
    // Opportunistic drain: apply the backlog only if the shard is idle —
    // never wait on a model that is busy serving predictions.
    bool drained = false;
    {
      std::unique_lock<std::mutex> lock(shard.model_mutex, std::try_to_lock);
      if (lock.owns_lock()) {
        DrainLocked(shard);
        drained = true;
      }
    }
    // Batch boundary: the hook runs with no shard lock held, so a
    // maintenance epoch it triggers can take LockForMaintenance freely.
    if (drained && options_.post_drain_hook) options_.post_drain_hook();
  }
}

void ShardedCostModel::ObserveBatch(std::span<const Observation> batch) {
  if (batch.empty()) return;
  // Partition by shard hash into index runs (an Observation copy would
  // heap-allocate its Point, so the runs carry indices only). The counting
  // sort is stable, so each shard's relative order is preserved: a
  // single-threaded caller produces exactly the per-shard insert sequences
  // of a scalar Observe loop.
  const size_t n = batch.size();
  std::vector<uint32_t> shard_of(n);
  std::vector<uint32_t> start(shards_.size() + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const auto s = static_cast<uint32_t>(ShardOf(batch[i].point));
    shard_of[i] = s;
    ++start[s + 1];
  }
  for (size_t s = 1; s < start.size(); ++s) start[s] += start[s - 1];
  std::vector<uint32_t> order(n);
  std::vector<uint32_t> cursor(start.begin(), start.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    order[cursor[shard_of[i]]++] = static_cast<uint32_t>(i);
  }
  const bool obs_on = obs::Enabled();
  for (size_t s = 0; s < shards_.size(); ++s) {
    const std::span<const uint32_t> run(order.data() + start[s],
                                        start[s + 1] - start[s]);
    if (run.empty()) continue;
    Shard& shard = *shards_[s];
    // Fast path: when the shard is idle, skip the queue round-trip (ring
    // copy, pop, drain-buffer copy) and gather-apply the run straight to
    // the tree. Draining the backlog first keeps this-producer FIFO order,
    // so a single-threaded caller still builds the exact scalar-loop tree.
    bool direct = false;
    {
      std::unique_lock<std::mutex> lock(shard.model_mutex, std::try_to_lock);
      if (lock.owns_lock()) {
        DrainLocked(shard);
        shard.model.ObserveGather(batch, run);
        const auto applied = static_cast<int64_t>(run.size());
        shard.applied += applied;
        shard.direct_submitted += applied;
        if (obs_on) obs::Core().feedback_applied.Inc(applied);
        direct = true;
      }
    }
    if (direct) {
      // Batch boundary, shard lock released: safe point for the
      // maintenance hook (an epoch re-locks every shard itself).
      if (options_.post_drain_hook) options_.post_drain_hook();
      continue;
    }
    // Slow path: the shard is busy serving — materialize the run and
    // enqueue it with exactly the scalar Observe's drop-oldest overflow
    // semantics, one queue-lock acquisition for the whole run.
    std::vector<Observation> bucket;
    bucket.reserve(run.size());
    for (const uint32_t i : run) bucket.push_back(batch[i]);
    const size_t dropped = shard.queue.PushBatch(bucket);
    if (obs_on) {
      obs::CoreMetrics& core = obs::Core();
      core.feedback_enqueued.Inc(static_cast<int64_t>(bucket.size()));
      if (dropped > 0) {
        core.feedback_dropped.Inc(static_cast<int64_t>(dropped));
        MLQ_TRACE_EVENT(obs::TraceEventType::kFeedbackDrop, obs::NowNs(), 0,
                        static_cast<double>(shard.queue.size()), 0.0);
      }
    }
  }
}

std::vector<std::unique_lock<std::mutex>>
ShardedCostModel::LockForMaintenance() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->model_mutex);
  return locks;
}

void ShardedCostModel::Flush() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->model_mutex);
    DrainLocked(*shard);
  }
}

void ShardedCostModel::AdvanceDecayEpoch(int64_t epochs) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->model_mutex);
    shard->model.AdvanceDecayEpoch(epochs);
  }
}

bool ShardedCostModel::SetByteBudget(int64_t limit_bytes) {
  // Same split and floor as the constructor's ShardConfig, so growing back
  // to the original total restores the original per-shard limits exactly.
  const int64_t per_shard =
      std::max<int64_t>(limit_bytes / num_shards(),
                        kNodeBaseBytes + 2 * kNonRootNodeBytes);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->model_mutex);
    shard->model.SetByteBudget(per_shard);
  }
  return true;
}

int64_t ShardedCostModel::MemoryBytes() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->model_mutex);
    total += shard->model.MemoryBytes();
  }
  return total;
}

int64_t ShardedCostModel::NodeCount() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->model_mutex);
    total += shard->model.NodeCount();
  }
  return total;
}

ModelUpdateBreakdown ShardedCostModel::update_breakdown() const {
  ModelUpdateBreakdown total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->model_mutex);
    const ModelUpdateBreakdown b = shard->model.update_breakdown();
    total.insert_seconds += b.insert_seconds;
    total.compress_seconds += b.compress_seconds;
    total.insertions += b.insertions;
    total.compressions += b.compressions;
  }
  return total;
}

ShardedModelStats ShardedCostModel::shard_stats(int shard_index) const {
  const Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  ShardedModelStats stats;
  {
    std::lock_guard<std::mutex> lock(shard.model_mutex);
    stats.predictions = shard.predictions;
    stats.observations_applied = shard.applied;
    stats.compressions = shard.model.tree().counters().compressions;
    // Submitted = everything that went through the queue plus everything
    // ObserveBatch applied directly past it.
    stats.observations_submitted = shard.direct_submitted;
  }
  stats.observations_submitted += shard.queue.pushed();
  stats.observations_dropped = shard.queue.dropped();
  stats.pending = static_cast<int64_t>(shard.queue.size());
  return stats;
}

ShardedModelStats ShardedCostModel::stats() const {
  ShardedModelStats total;
  for (int i = 0; i < num_shards(); ++i) {
    const ShardedModelStats s = shard_stats(i);
    total.predictions += s.predictions;
    total.observations_submitted += s.observations_submitted;
    total.observations_dropped += s.observations_dropped;
    total.observations_applied += s.observations_applied;
    total.compressions += s.compressions;
    total.pending += s.pending;
  }
  return total;
}

QuadtreeCounters ShardedCostModel::AggregateTreeCounters() const {
  QuadtreeCounters total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->model_mutex);
    const QuadtreeCounters& c = shard->model.tree().counters();
    total.insertions += c.insertions;
    total.compressions += c.compressions;
    total.nodes_created += c.nodes_created;
    total.nodes_freed += c.nodes_freed;
    total.insert_seconds += c.insert_seconds;
    total.compress_seconds += c.compress_seconds;
  }
  return total;
}

}  // namespace mlq
