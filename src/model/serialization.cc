#include "model/serialization.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <memory>

namespace mlq {
namespace {

constexpr uint32_t kMagic = 0x4d4c5154;  // "MLQT"
constexpr uint16_t kVersion = 1;

// --- little write/read cursor helpers --------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = out_->size();
    out_->resize(offset + sizeof(T));
    std::memcpy(out_->data() + offset, &value, sizeof(T));
  }

 private:
  std::vector<uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& in) : in_(in) {}

  template <typename T>
  bool Get(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset_ + sizeof(T) > in_.size()) return false;
    std::memcpy(value, in_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  bool AtEnd() const { return offset_ == in_.size(); }

 private:
  const std::vector<uint8_t>& in_;
  size_t offset_ = 0;
};

void WriteNode(const QuadtreeNode& node, Writer& writer) {
  writer.Put<double>(node.summary().sum);
  writer.Put<int64_t>(node.summary().count);
  writer.Put<double>(node.summary().sum_squares);
  writer.Put<uint8_t>(static_cast<uint8_t>(node.num_children()));
  for (const auto& entry : node.children()) {
    writer.Put<uint8_t>(entry.index);
    WriteNode(*entry.node, writer);
  }
}

// Reads one node into `node` (already created); creates children
// recursively. Returns false on malformed input.
bool ReadNode(Reader& reader, QuadtreeNode* node, int dims, int max_depth,
              int64_t* nodes_read, std::string* error) {
  SummaryTriple summary;
  uint8_t num_children = 0;
  if (!reader.Get(&summary.sum) || !reader.Get(&summary.count) ||
      !reader.Get(&summary.sum_squares) || !reader.Get(&num_children)) {
    *error = "truncated node";
    return false;
  }
  node->mutable_summary() = summary;
  if (num_children > (1 << dims)) {
    *error = "child count exceeds 2^d";
    return false;
  }
  if (num_children > 0 && node->depth() >= max_depth) {
    *error = "internal node at max depth";
    return false;
  }
  int previous_index = -1;
  for (int c = 0; c < num_children; ++c) {
    uint8_t index = 0;
    if (!reader.Get(&index)) {
      *error = "truncated child index";
      return false;
    }
    if (index >= (1 << dims) || static_cast<int>(index) <= previous_index) {
      *error = "child index out of range or out of order";
      return false;
    }
    previous_index = index;
    QuadtreeNode* child = node->CreateChild(index);
    ++*nodes_read;
    if (!ReadNode(reader, child, dims, max_depth, nodes_read, error)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<uint8_t> SerializeQuadtree(const MemoryLimitedQuadtree& tree) {
  std::vector<uint8_t> bytes;
  Writer writer(&bytes);
  const MlqConfig& config = tree.config();
  const Box& space = tree.space();

  writer.Put<uint32_t>(kMagic);
  writer.Put<uint16_t>(kVersion);
  writer.Put<uint8_t>(static_cast<uint8_t>(space.dims()));
  writer.Put<uint8_t>(static_cast<uint8_t>(config.strategy));
  writer.Put<int32_t>(config.max_depth);
  writer.Put<double>(config.alpha);
  writer.Put<double>(config.gamma);
  writer.Put<int64_t>(config.beta);
  writer.Put<int64_t>(config.memory_limit_bytes);
  for (int d = 0; d < space.dims(); ++d) writer.Put<double>(space.lo()[d]);
  for (int d = 0; d < space.dims(); ++d) writer.Put<double>(space.hi()[d]);
  writer.Put<uint8_t>(tree.compressed_once() ? 1 : 0);
  WriteNode(tree.root(), writer);
  return bytes;
}

std::unique_ptr<MemoryLimitedQuadtree> DeserializeQuadtree(
    const std::vector<uint8_t>& bytes, std::string* error) {
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  Reader reader(bytes);

  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t dims = 0;
  uint8_t strategy = 0;
  MlqConfig config;
  if (!reader.Get(&magic) || !reader.Get(&version) || !reader.Get(&dims) ||
      !reader.Get(&strategy) || !reader.Get(&config.max_depth) ||
      !reader.Get(&config.alpha) || !reader.Get(&config.gamma) ||
      !reader.Get(&config.beta) || !reader.Get(&config.memory_limit_bytes)) {
    *err = "truncated header";
    return nullptr;
  }
  if (magic != kMagic) {
    *err = "bad magic";
    return nullptr;
  }
  if (version != kVersion) {
    *err = "unsupported version";
    return nullptr;
  }
  if (dims < 1 || dims > kMaxDims) {
    *err = "dims out of range";
    return nullptr;
  }
  if (strategy > static_cast<uint8_t>(InsertionStrategy::kLazy)) {
    *err = "unknown insertion strategy";
    return nullptr;
  }
  config.strategy = static_cast<InsertionStrategy>(strategy);
  if (config.max_depth < 0 || config.memory_limit_bytes < kNodeBaseBytes) {
    *err = "invalid config";
    return nullptr;
  }

  Point lo(dims);
  Point hi(dims);
  for (int d = 0; d < dims; ++d) {
    if (!reader.Get(&lo[d])) {
      *err = "truncated space";
      return nullptr;
    }
  }
  for (int d = 0; d < dims; ++d) {
    if (!reader.Get(&hi[d])) {
      *err = "truncated space";
      return nullptr;
    }
    if (!(lo[d] < hi[d])) {
      *err = "degenerate space";
      return nullptr;
    }
  }
  uint8_t compressed_once = 0;
  if (!reader.Get(&compressed_once)) {
    *err = "truncated flags";
    return nullptr;
  }

  auto tree = std::make_unique<MemoryLimitedQuadtree>(Box(lo, hi), config);
  int64_t nodes_read = 1;  // Root exists already.
  if (!ReadNode(reader, tree->root_.get(), dims, config.max_depth, &nodes_read,
                err)) {
    return nullptr;
  }
  if (!reader.AtEnd()) {
    *err = "trailing bytes";
    return nullptr;
  }
  // Rebuild accounting: the constructor charged the root; charge the rest.
  tree->num_nodes_ = nodes_read;
  tree->budget_.Charge((nodes_read - 1) * kNonRootNodeBytes);
  if (tree->budget_.used() > tree->budget_.limit()) {
    *err = "tree larger than its own memory budget";
    return nullptr;
  }
  tree->compressed_once_ = compressed_once != 0;

  std::string invariant_error;
  if (!tree->CheckInvariants(&invariant_error)) {
    *err = "invariants violated after load: " + invariant_error;
    return nullptr;
  }
  return tree;
}

namespace {

constexpr uint32_t kHistogramMagic = 0x4d4c5148;  // "MLQH"
constexpr uint16_t kHistogramVersion = 1;

}  // namespace

std::vector<uint8_t> SerializeHistogram(const StaticHistogram& histogram) {
  std::vector<uint8_t> bytes;
  Writer writer(&bytes);
  const Box& space = histogram.space();
  const bool is_height = histogram.name() == "SH-H";

  writer.Put<uint32_t>(kHistogramMagic);
  writer.Put<uint16_t>(kHistogramVersion);
  writer.Put<uint8_t>(is_height ? 1 : 0);
  writer.Put<uint8_t>(static_cast<uint8_t>(space.dims()));
  writer.Put<int64_t>(histogram.memory_limit_bytes_);
  writer.Put<int32_t>(histogram.intervals_per_dim_);
  writer.Put<uint8_t>(histogram.trained_ ? 1 : 0);
  for (int d = 0; d < space.dims(); ++d) writer.Put<double>(space.lo()[d]);
  for (int d = 0; d < space.dims(); ++d) writer.Put<double>(space.hi()[d]);
  if (!histogram.trained_) return bytes;

  for (const auto& dim_bounds : histogram.boundaries_) {
    for (double b : dim_bounds) writer.Put<double>(b);
  }
  writer.Put<double>(histogram.global_avg_);
  for (size_t b = 0; b < histogram.bucket_avgs_.size(); ++b) {
    writer.Put<double>(histogram.bucket_avgs_[b]);
    writer.Put<int64_t>(histogram.bucket_counts_[b]);
  }
  return bytes;
}

std::unique_ptr<StaticHistogram> DeserializeHistogram(
    const std::vector<uint8_t>& bytes, std::string* error) {
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  Reader reader(bytes);

  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t kind = 0;
  uint8_t dims = 0;
  int64_t budget = 0;
  int32_t intervals = 0;
  uint8_t trained = 0;
  if (!reader.Get(&magic) || !reader.Get(&version) || !reader.Get(&kind) ||
      !reader.Get(&dims) || !reader.Get(&budget) || !reader.Get(&intervals) ||
      !reader.Get(&trained)) {
    *err = "truncated histogram header";
    return nullptr;
  }
  if (magic != kHistogramMagic) {
    *err = "bad histogram magic";
    return nullptr;
  }
  if (version != kHistogramVersion) {
    *err = "unsupported histogram version";
    return nullptr;
  }
  if (kind > 1 || dims < 1 || dims > kMaxDims || intervals < 1 ||
      budget < 8) {
    *err = "invalid histogram header";
    return nullptr;
  }
  Point lo(dims);
  Point hi(dims);
  for (int d = 0; d < dims; ++d) {
    if (!reader.Get(&lo[d])) {
      *err = "truncated histogram space";
      return nullptr;
    }
  }
  for (int d = 0; d < dims; ++d) {
    if (!reader.Get(&hi[d]) || !(lo[d] < hi[d])) {
      *err = "truncated or degenerate histogram space";
      return nullptr;
    }
  }
  const Box space(lo, hi);
  std::unique_ptr<StaticHistogram> histogram;
  if (kind == 1) {
    histogram = std::make_unique<EquiHeightHistogram>(space, budget);
  } else {
    histogram = std::make_unique<EquiWidthHistogram>(space, budget);
  }
  if (trained == 0) {
    if (!reader.AtEnd()) {
      *err = "trailing bytes in untrained histogram";
      return nullptr;
    }
    return histogram;
  }

  histogram->intervals_per_dim_ = intervals;
  histogram->boundaries_.assign(static_cast<size_t>(dims), {});
  for (int d = 0; d < dims; ++d) {
    auto& dim_bounds = histogram->boundaries_[static_cast<size_t>(d)];
    dim_bounds.resize(static_cast<size_t>(intervals - 1));
    double previous = -std::numeric_limits<double>::infinity();
    for (double& b : dim_bounds) {
      if (!reader.Get(&b)) {
        *err = "truncated boundaries";
        return nullptr;
      }
      if (b < previous) {
        *err = "boundaries out of order";
        return nullptr;
      }
      previous = b;
    }
  }
  if (!reader.Get(&histogram->global_avg_)) {
    *err = "truncated global average";
    return nullptr;
  }
  int64_t buckets = 1;
  for (int d = 0; d < dims; ++d) {
    if (buckets > (1 << 28) / intervals) {
      *err = "bucket count overflow";
      return nullptr;
    }
    buckets *= intervals;
  }
  histogram->bucket_avgs_.resize(static_cast<size_t>(buckets));
  histogram->bucket_counts_.resize(static_cast<size_t>(buckets));
  for (int64_t b = 0; b < buckets; ++b) {
    if (!reader.Get(&histogram->bucket_avgs_[static_cast<size_t>(b)]) ||
        !reader.Get(&histogram->bucket_counts_[static_cast<size_t>(b)])) {
      *err = "truncated buckets";
      return nullptr;
    }
    if (histogram->bucket_counts_[static_cast<size_t>(b)] < 0) {
      *err = "negative bucket count";
      return nullptr;
    }
  }
  if (!reader.AtEnd()) {
    *err = "trailing bytes";
    return nullptr;
  }
  histogram->charged_bytes_ = buckets * 8;
  for (int d = 0; d < dims; ++d) {
    histogram->charged_bytes_ += histogram->BoundaryBytesPerDim(intervals);
  }
  histogram->trained_ = true;
  return histogram;
}

bool SaveQuadtreeToFile(const MemoryLimitedQuadtree& tree,
                        const std::string& path) {
  const std::vector<uint8_t> bytes = SerializeQuadtree(tree);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::unique_ptr<MemoryLimitedQuadtree> LoadQuadtreeFromFile(
    const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    if (error != nullptr) *error = "cannot open file";
    return nullptr;
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    if (error != nullptr) *error = "cannot read file";
    return nullptr;
  }
  return DeserializeQuadtree(bytes, error);
}

}  // namespace mlq
