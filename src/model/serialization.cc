#include "model/serialization.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>

namespace mlq {
namespace {

constexpr uint32_t kMagic = 0x4d4c5154;  // "MLQT"
// Version history:
//   1 — recursive pre-order records, one per node:
//       [sum f64][count i64][sum_squares f64][num_children u8]
//       ([quadrant u8][child record])*
//   2 — flat pooled layout: [num_nodes u32] then one record per node in
//       pre-order: [parent_record u32][quadrant u8][sum f64][count i64]
//       [sum_squares f64], parent_record = 0xFFFFFFFF for the root.
//       Mirrors the in-memory arena (32-bit links, no recursion) and lets
//       the reader Reserve() the exact node count before rebuilding.
//   3 — v2 plus the windowed-summary decay section: the header gains
//       [decay_half_life f64][decay_epoch u32] after [compressed_once u8],
//       and every node record gains a trailing [decay_epoch u32]. Emitted
//       ONLY for trees with decay enabled; a decay-off tree serializes as
//       byte-identical v2, and v1/v2 snapshots load as no-decay (epoch 0).
// Readers accept all three; writers emit kVersion (kDecayVersion when the
// tree ages its summaries).
constexpr uint16_t kVersion = 2;
constexpr uint16_t kDecayVersion = 3;
constexpr uint32_t kNoParentRecord = 0xFFFFFFFFu;

// --- little write/read cursor helpers --------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = out_->size();
    out_->resize(offset + sizeof(T));
    std::memcpy(out_->data() + offset, &value, sizeof(T));
  }

 private:
  std::vector<uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& in) : in_(in) {}

  template <typename T>
  bool Get(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset_ + sizeof(T) > in_.size()) return false;
    std::memcpy(value, in_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  bool AtEnd() const { return offset_ == in_.size(); }
  size_t Remaining() const { return in_.size() - offset_; }

 private:
  const std::vector<uint8_t>& in_;
  size_t offset_ = 0;
};

// v2 node body: parent/quadrant are emitted by the caller.
void WriteSummary(const SummaryTriple& summary, Writer& writer) {
  writer.Put<double>(summary.sum);
  writer.Put<int64_t>(summary.count);
  writer.Put<double>(summary.sum_squares);
}

}  // namespace

std::vector<uint8_t> SerializeQuadtree(const MemoryLimitedQuadtree& tree) {
  std::vector<uint8_t> bytes;
  Writer writer(&bytes);
  const MlqConfig& config = tree.config();
  const Box& space = tree.space();

  const bool decayed = tree.decay_enabled();
  writer.Put<uint32_t>(kMagic);
  writer.Put<uint16_t>(decayed ? kDecayVersion : kVersion);
  writer.Put<uint8_t>(static_cast<uint8_t>(space.dims()));
  writer.Put<uint8_t>(static_cast<uint8_t>(config.strategy));
  writer.Put<int32_t>(config.max_depth);
  writer.Put<double>(config.alpha);
  writer.Put<double>(config.gamma);
  writer.Put<int64_t>(config.beta);
  writer.Put<int64_t>(config.memory_limit_bytes);
  for (int d = 0; d < space.dims(); ++d) writer.Put<double>(space.lo()[d]);
  for (int d = 0; d < space.dims(); ++d) writer.Put<double>(space.hi()[d]);
  writer.Put<uint8_t>(tree.compressed_once() ? 1 : 0);
  if (decayed) {
    writer.Put<double>(config.decay_half_life);
    writer.Put<uint32_t>(tree.decay_epoch());
  }

  // Flat pooled body: pre-order records with 32-bit parent-record links.
  // Pool slot indices are renumbered to visit order so the byte stream is
  // independent of the free-list history of the tree being saved.
  writer.Put<uint32_t>(static_cast<uint32_t>(tree.num_nodes()));
  std::vector<uint32_t> record_of(tree.pool().slot_count(), kNoParentRecord);
  uint32_t next_record = 0;
  tree.ForEachNode([&](const NodeView& node, const Box&) {
    record_of[node.index()] = next_record++;
    if (node.has_parent()) {
      writer.Put<uint32_t>(record_of[node.parent().index()]);
      writer.Put<uint8_t>(static_cast<uint8_t>(node.index_in_parent()));
    } else {
      writer.Put<uint32_t>(kNoParentRecord);
      writer.Put<uint8_t>(0);
    }
    WriteSummary(node.summary(), writer);
    if (decayed) {
      writer.Put<uint32_t>(tree.pool().node(node.index()).decay_epoch);
    }
  });
  return bytes;
}

std::unique_ptr<MemoryLimitedQuadtree> DeserializeQuadtree(
    const std::vector<uint8_t>& bytes, std::string* error) {
  return DeserializeQuadtree(bytes, nullptr, error);
}

std::unique_ptr<MemoryLimitedQuadtree> DeserializeQuadtree(
    const std::vector<uint8_t>& bytes, std::shared_ptr<SharedNodeArena> arena,
    std::string* error) {
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  Reader reader(bytes);

  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t dims = 0;
  uint8_t strategy = 0;
  MlqConfig config;
  if (!reader.Get(&magic) || !reader.Get(&version) || !reader.Get(&dims) ||
      !reader.Get(&strategy) || !reader.Get(&config.max_depth) ||
      !reader.Get(&config.alpha) || !reader.Get(&config.gamma) ||
      !reader.Get(&config.beta) || !reader.Get(&config.memory_limit_bytes)) {
    *err = "truncated header";
    return nullptr;
  }
  if (magic != kMagic) {
    *err = "bad magic";
    return nullptr;
  }
  if (version != 1 && version != 2 && version != kDecayVersion) {
    *err = "unsupported version";
    return nullptr;
  }
  const bool decayed = version == kDecayVersion;
  if (dims < 1 || dims > kMaxDims) {
    *err = "dims out of range";
    return nullptr;
  }
  if (strategy > static_cast<uint8_t>(InsertionStrategy::kLazy)) {
    *err = "unknown insertion strategy";
    return nullptr;
  }
  config.strategy = static_cast<InsertionStrategy>(strategy);
  if (config.max_depth < 0 || config.memory_limit_bytes < kNodeBaseBytes) {
    *err = "invalid config";
    return nullptr;
  }

  Point lo(dims);
  Point hi(dims);
  for (int d = 0; d < dims; ++d) {
    if (!reader.Get(&lo[d])) {
      *err = "truncated space";
      return nullptr;
    }
  }
  for (int d = 0; d < dims; ++d) {
    if (!reader.Get(&hi[d])) {
      *err = "truncated space";
      return nullptr;
    }
    if (!(lo[d] < hi[d])) {
      *err = "degenerate space";
      return nullptr;
    }
  }
  uint8_t compressed_once = 0;
  if (!reader.Get(&compressed_once)) {
    *err = "truncated flags";
    return nullptr;
  }
  uint32_t tree_decay_epoch = 0;
  if (decayed) {
    if (!reader.Get(&config.decay_half_life) ||
        !reader.Get(&tree_decay_epoch)) {
      *err = "truncated decay section";
      return nullptr;
    }
    if (!(config.decay_half_life > 0.0) ||
        !std::isfinite(config.decay_half_life)) {
      *err = "invalid decay half-life";
      return nullptr;
    }
  }

  if (arena != nullptr && arena->fanout() != (1 << dims)) {
    *err = "arena fanout does not match serialized dims";
    return nullptr;
  }
  auto tree = std::make_unique<MemoryLimitedQuadtree>(Box(lo, hi), config,
                                                      std::move(arena));
  NodePool& pool = tree->pool_;
  tree->decay_epoch_ = tree_decay_epoch;

  if (version >= 2) {
    // Flat pooled layout. Records are renumbered to pre-order on write, and
    // block allocation places nodes wherever their parent's child block
    // lives, so the reader keeps a record -> pool-slot mapping.
    uint32_t num_nodes = 0;
    if (!reader.Get(&num_nodes)) {
      *err = "truncated node count";
      return nullptr;
    }
    if (num_nodes < 1) {
      *err = "node count must include the root";
      return nullptr;
    }
    // Each record is at least 29 bytes (33 with the decay epoch); a
    // corrupted count larger than the payload could possibly justify must
    // not drive a giant Reserve.
    const size_t record_bytes = sizeof(uint32_t) + sizeof(uint8_t) +
                                2 * sizeof(double) + sizeof(int64_t) +
                                (decayed ? sizeof(uint32_t) : 0);
    if (num_nodes > reader.Remaining() / record_bytes) {
      *err = "node count exceeds payload";
      return nullptr;
    }
    pool.Reserve(num_nodes);
    std::vector<NodeIndex> slot_of_record;
    slot_of_record.reserve(num_nodes);
    for (uint32_t i = 0; i < num_nodes; ++i) {
      uint32_t parent_record = 0;
      uint8_t quadrant = 0;
      SummaryTriple summary;
      if (!reader.Get(&parent_record) || !reader.Get(&quadrant) ||
          !reader.Get(&summary.sum) || !reader.Get(&summary.count) ||
          !reader.Get(&summary.sum_squares)) {
        *err = "truncated node record";
        return nullptr;
      }
      uint32_t node_epoch = 0;
      if (decayed) {
        if (!reader.Get(&node_epoch)) {
          *err = "truncated node decay epoch";
          return nullptr;
        }
        if (node_epoch > tree_decay_epoch) {
          *err = "node decay epoch ahead of the tree clock";
          return nullptr;
        }
      }
      if (i == 0) {
        if (parent_record != kNoParentRecord) {
          *err = "first record is not a root";
          return nullptr;
        }
        pool.node(tree->root_).summary = summary;
        pool.node(tree->root_).decay_epoch = node_epoch;
        slot_of_record.push_back(tree->root_);
        continue;
      }
      if (parent_record >= i) {
        *err = "parent record out of order";
        return nullptr;
      }
      const NodeIndex parent = slot_of_record[parent_record];
      if (quadrant >= (1 << dims)) {
        *err = "child quadrant out of range";
        return nullptr;
      }
      if (pool.node(parent).depth >= config.max_depth) {
        *err = "internal node at max depth";
        return nullptr;
      }
      if (pool.Child(parent, quadrant) != kInvalidNodeIndex) {
        *err = "duplicate child quadrant";
        return nullptr;
      }
      const NodeIndex child = pool.CreateChild(parent, quadrant);
      pool.node(child).summary = summary;
      pool.node(child).decay_epoch = node_epoch;
      slot_of_record.push_back(child);
    }
  } else {
    // v1: recursive pre-order with per-node child counts. Kept so catalogs
    // saved before the pooled layout still load.
    struct Frame {
      NodeIndex node;
      int children_left;
      int previous_quadrant;
    };
    std::vector<Frame> stack;
    auto read_into = [&](NodeIndex node, std::string* e) -> bool {
      SummaryTriple summary;
      uint8_t num_children = 0;
      if (!reader.Get(&summary.sum) || !reader.Get(&summary.count) ||
          !reader.Get(&summary.sum_squares) || !reader.Get(&num_children)) {
        *e = "truncated node";
        return false;
      }
      pool.node(node).summary = summary;
      if (num_children > (1 << dims)) {
        *e = "child count exceeds 2^d";
        return false;
      }
      if (num_children > 0 && pool.node(node).depth >= config.max_depth) {
        *e = "internal node at max depth";
        return false;
      }
      stack.push_back(Frame{node, num_children, -1});
      return true;
    };
    if (!read_into(tree->root_, err)) return nullptr;
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.children_left == 0) {
        stack.pop_back();
        continue;
      }
      --top.children_left;
      uint8_t quadrant = 0;
      if (!reader.Get(&quadrant)) {
        *err = "truncated child index";
        return nullptr;
      }
      if (quadrant >= (1 << dims) ||
          static_cast<int>(quadrant) <= top.previous_quadrant) {
        *err = "child index out of range or out of order";
        return nullptr;
      }
      top.previous_quadrant = quadrant;
      const NodeIndex child = pool.CreateChild(top.node, quadrant);
      // CreateChild may grow the pool; `top` could dangle — re-read nothing
      // from it until the next loop iteration re-fetches stack.back().
      if (!read_into(child, err)) return nullptr;
    }
  }

  if (!reader.AtEnd()) {
    *err = "trailing bytes";
    return nullptr;
  }
  tree->SyncBudget();
  if (tree->budget_.used() > tree->budget_.limit()) {
    *err = "tree larger than its own memory budget";
    return nullptr;
  }
  tree->compressed_once_ = compressed_once != 0;

  std::string invariant_error;
  if (!tree->CheckInvariants(&invariant_error)) {
    *err = "invariants violated after load: " + invariant_error;
    return nullptr;
  }
  return tree;
}

namespace {

constexpr uint32_t kHistogramMagic = 0x4d4c5148;  // "MLQH"
constexpr uint16_t kHistogramVersion = 1;

}  // namespace

std::vector<uint8_t> SerializeHistogram(const StaticHistogram& histogram) {
  std::vector<uint8_t> bytes;
  Writer writer(&bytes);
  const Box& space = histogram.space();
  const bool is_height = histogram.name() == "SH-H";

  writer.Put<uint32_t>(kHistogramMagic);
  writer.Put<uint16_t>(kHistogramVersion);
  writer.Put<uint8_t>(is_height ? 1 : 0);
  writer.Put<uint8_t>(static_cast<uint8_t>(space.dims()));
  writer.Put<int64_t>(histogram.memory_limit_bytes_);
  writer.Put<int32_t>(histogram.intervals_per_dim_);
  writer.Put<uint8_t>(histogram.trained_ ? 1 : 0);
  for (int d = 0; d < space.dims(); ++d) writer.Put<double>(space.lo()[d]);
  for (int d = 0; d < space.dims(); ++d) writer.Put<double>(space.hi()[d]);
  if (!histogram.trained_) return bytes;

  for (const auto& dim_bounds : histogram.boundaries_) {
    for (double b : dim_bounds) writer.Put<double>(b);
  }
  writer.Put<double>(histogram.global_avg_);
  for (size_t b = 0; b < histogram.bucket_avgs_.size(); ++b) {
    writer.Put<double>(histogram.bucket_avgs_[b]);
    writer.Put<int64_t>(histogram.bucket_counts_[b]);
  }
  return bytes;
}

std::unique_ptr<StaticHistogram> DeserializeHistogram(
    const std::vector<uint8_t>& bytes, std::string* error) {
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  Reader reader(bytes);

  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t kind = 0;
  uint8_t dims = 0;
  int64_t budget = 0;
  int32_t intervals = 0;
  uint8_t trained = 0;
  if (!reader.Get(&magic) || !reader.Get(&version) || !reader.Get(&kind) ||
      !reader.Get(&dims) || !reader.Get(&budget) || !reader.Get(&intervals) ||
      !reader.Get(&trained)) {
    *err = "truncated histogram header";
    return nullptr;
  }
  if (magic != kHistogramMagic) {
    *err = "bad histogram magic";
    return nullptr;
  }
  if (version != kHistogramVersion) {
    *err = "unsupported histogram version";
    return nullptr;
  }
  if (kind > 1 || dims < 1 || dims > kMaxDims || intervals < 1 ||
      budget < 8) {
    *err = "invalid histogram header";
    return nullptr;
  }
  Point lo(dims);
  Point hi(dims);
  for (int d = 0; d < dims; ++d) {
    if (!reader.Get(&lo[d])) {
      *err = "truncated histogram space";
      return nullptr;
    }
  }
  for (int d = 0; d < dims; ++d) {
    if (!reader.Get(&hi[d]) || !(lo[d] < hi[d])) {
      *err = "truncated or degenerate histogram space";
      return nullptr;
    }
  }
  const Box space(lo, hi);
  std::unique_ptr<StaticHistogram> histogram;
  if (kind == 1) {
    histogram = std::make_unique<EquiHeightHistogram>(space, budget);
  } else {
    histogram = std::make_unique<EquiWidthHistogram>(space, budget);
  }
  if (trained == 0) {
    if (!reader.AtEnd()) {
      *err = "trailing bytes in untrained histogram";
      return nullptr;
    }
    return histogram;
  }

  histogram->intervals_per_dim_ = intervals;
  histogram->boundaries_.assign(static_cast<size_t>(dims), {});
  for (int d = 0; d < dims; ++d) {
    auto& dim_bounds = histogram->boundaries_[static_cast<size_t>(d)];
    dim_bounds.resize(static_cast<size_t>(intervals - 1));
    double previous = -std::numeric_limits<double>::infinity();
    for (double& b : dim_bounds) {
      if (!reader.Get(&b)) {
        *err = "truncated boundaries";
        return nullptr;
      }
      if (b < previous) {
        *err = "boundaries out of order";
        return nullptr;
      }
      previous = b;
    }
  }
  if (!reader.Get(&histogram->global_avg_)) {
    *err = "truncated global average";
    return nullptr;
  }
  int64_t buckets = 1;
  for (int d = 0; d < dims; ++d) {
    if (buckets > (1 << 28) / intervals) {
      *err = "bucket count overflow";
      return nullptr;
    }
    buckets *= intervals;
  }
  histogram->bucket_avgs_.resize(static_cast<size_t>(buckets));
  histogram->bucket_counts_.resize(static_cast<size_t>(buckets));
  for (int64_t b = 0; b < buckets; ++b) {
    if (!reader.Get(&histogram->bucket_avgs_[static_cast<size_t>(b)]) ||
        !reader.Get(&histogram->bucket_counts_[static_cast<size_t>(b)])) {
      *err = "truncated buckets";
      return nullptr;
    }
    if (histogram->bucket_counts_[static_cast<size_t>(b)] < 0) {
      *err = "negative bucket count";
      return nullptr;
    }
  }
  if (!reader.AtEnd()) {
    *err = "trailing bytes";
    return nullptr;
  }
  histogram->charged_bytes_ = buckets * 8;
  for (int d = 0; d < dims; ++d) {
    histogram->charged_bytes_ += histogram->BoundaryBytesPerDim(intervals);
  }
  histogram->trained_ = true;
  return histogram;
}

bool SaveQuadtreeToFile(const MemoryLimitedQuadtree& tree,
                        const std::string& path) {
  const std::vector<uint8_t> bytes = SerializeQuadtree(tree);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::unique_ptr<MemoryLimitedQuadtree> LoadQuadtreeFromFile(
    const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    if (error != nullptr) *error = "cannot open file";
    return nullptr;
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    if (error != nullptr) *error = "cannot read file";
    return nullptr;
  }
  return DeserializeQuadtree(bytes, error);
}

}  // namespace mlq
