#ifndef MLQ_MODEL_PARTITIONED_MODEL_H_
#define MLQ_MODEL_PARTITIONED_MODEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "quadtree/quadtree_config.h"
#include "quadtree/shared_node_arena.h"

namespace mlq {

// Extension beyond the paper (its "future work": nominal input arguments).
//
// A nominal argument (e.g. an enum-like category, an index choice, a file
// format) has no meaningful order, so it cannot be a quadtree dimension.
// The standard treatment is to *partition*: one sub-model per distinct
// nominal value, over the remaining ordinal model variables. This class
// manages that partitioning under a single total memory budget:
//
//   * the first (max_partitions) distinct keys each get a private
//     sub-model with budget total / (max_partitions + 1);
//   * all later keys share one overflow sub-model (same budget slice), so
//     memory stays bounded no matter how many distinct values appear.
class PartitionedCostModel {
 public:
  // Builds one sub-model with the given byte budget.
  using ModelFactory =
      std::function<std::unique_ptr<CostModel>(int64_t budget_bytes)>;

  PartitionedCostModel(ModelFactory factory, int max_partitions,
                       int64_t total_budget_bytes);

  PartitionedCostModel(const PartitionedCostModel&) = delete;
  PartitionedCostModel& operator=(const PartitionedCostModel&) = delete;

  // Predicted cost of the UDF with nominal value `key` at ordinal point
  // `point`. Unseen keys predict via the overflow model (0 when nothing has
  // been observed at all).
  double Predict(int64_t key, const Point& point) const;

  // Feedback for one execution.
  void Observe(int64_t key, const Point& point, double actual_cost);

  int num_partitions() const { return static_cast<int>(partitions_.size()); }
  int max_partitions() const { return max_partitions_; }
  int64_t MemoryBytes() const;
  int64_t partition_budget_bytes() const { return partition_budget_; }

  // The sub-model serving `key` right now, or nullptr if none would (no
  // private partition and no overflow model yet).
  const CostModel* ModelForKey(int64_t key) const;

 private:
  CostModel* FindOrCreate(int64_t key);

  struct Partition {
    int64_t key;
    std::unique_ptr<CostModel> model;
  };

  ModelFactory factory_;
  int max_partitions_;
  int64_t partition_budget_;
  std::vector<Partition> partitions_;        // Private per-key models.
  std::unique_ptr<CostModel> overflow_;      // Shared by all other keys.
};

// A ModelFactory whose sub-models are MLQ trees drawing physical node
// blocks from `arena` (typically the owning catalog's, via ArenaForDims).
// Without this, every FindOrCreate growth step would spin up a private
// arena — hundreds of nominal keys each paying their own slab high-water —
// instead of reusing the catalog slab that Compact() keeps tight. Each
// sub-model still gets its own *logical* budget_bytes cap.
PartitionedCostModel::ModelFactory MakeSharedArenaMlqFactory(
    const Box& space, const MlqConfig& base_config,
    std::shared_ptr<SharedNodeArena> arena);

}  // namespace mlq

#endif  // MLQ_MODEL_PARTITIONED_MODEL_H_
