#ifndef MLQ_MODEL_SERIALIZATION_H_
#define MLQ_MODEL_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/static_histogram.h"
#include "quadtree/memory_limited_quadtree.h"

namespace mlq {

// Catalog persistence for cost models.
//
// An ORDBMS keeps its cost models in the system catalog so they survive
// restarts; MLQ is explicitly designed so its serialized form is what the
// memory budget is charged against. This module provides a compact,
// versioned, byte-oriented encoding of a memory-limited quadtree (current
// format, version 2 — a flat image of the node pool):
//
//   [magic u32][version u16][dims u8][strategy u8]
//   [max_depth i32][alpha f64][gamma f64][beta i64][budget i64]
//   [space lo f64 x dims][space hi f64 x dims]
//   [compressed_once u8]
//   [num_nodes u32]
//   node record x num_nodes, pre-order:
//     [parent_record u32 (0xFFFFFFFF for the root)][quadrant u8]
//     [sum f64][count i64][sum_squares f64]
//
// Records reference their parent by record number, mirroring the 32-bit
// arena indices of the in-memory NodePool; the reader reserves the exact
// node count up front and rebuilds without recursion. Version 1 (recursive
// per-node child counts) is still read for old catalogs; unknown versions
// are an explicit "unsupported version" error. No pointers are stored.
//
// Trees with windowed-summary decay enabled (MlqConfig::decay_half_life
// > 0) serialize as version 3: the header gains
// [decay_half_life f64][decay_epoch u32] after [compressed_once u8] and
// each node record a trailing [decay_epoch u32]. Decay-off trees emit
// byte-identical version-2 images, and v1/v2 snapshots load as no-decay
// (every epoch 0) — see docs/drift.md.

// Serializes the tree (structure + summaries + config) into bytes.
std::vector<uint8_t> SerializeQuadtree(const MemoryLimitedQuadtree& tree);

// Reconstructs a tree from bytes produced by SerializeQuadtree. Returns
// nullptr (and fills *error when non-null) on malformed input: bad magic,
// unsupported version, truncation, or structural violations (child index
// out of range, duplicate children, depth over max_depth).
std::unique_ptr<MemoryLimitedQuadtree> DeserializeQuadtree(
    const std::vector<uint8_t>& bytes, std::string* error = nullptr);

// Same, rebuilding the tree on a shared node arena (fanout must match the
// serialized dimensionality). Records are renumbered to pre-order visit
// order on write, so the byte image is independent of arena layout:
// serialize → deserialize round-trips bit-identically between private and
// shared arenas.
std::unique_ptr<MemoryLimitedQuadtree> DeserializeQuadtree(
    const std::vector<uint8_t>& bytes, std::shared_ptr<SharedNodeArena> arena,
    std::string* error = nullptr);

// Convenience file I/O. Returns false on filesystem errors.
bool SaveQuadtreeToFile(const MemoryLimitedQuadtree& tree,
                        const std::string& path);
std::unique_ptr<MemoryLimitedQuadtree> LoadQuadtreeFromFile(
    const std::string& path, std::string* error = nullptr);

// The SH baselines persist too (a DBMS catalog stores whatever the cost
// model is). Encoding:
//   [magic u32][version u16][kind u8: 0 = SH-W, 1 = SH-H][dims u8]
//   [budget i64][intervals i32][trained u8]
//   [space lo/hi f64 x dims]
//   per dim: [boundary f64 x (intervals - 1)]
//   [global_avg f64]
//   per bucket: [avg f64][count i64]
// Untrained histograms serialize the header only.
std::vector<uint8_t> SerializeHistogram(const StaticHistogram& histogram);
std::unique_ptr<StaticHistogram> DeserializeHistogram(
    const std::vector<uint8_t>& bytes, std::string* error = nullptr);

}  // namespace mlq

#endif  // MLQ_MODEL_SERIALIZATION_H_
