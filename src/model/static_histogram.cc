#include "model/static_histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mlq {

StaticHistogram::StaticHistogram(const Box& space, int64_t memory_limit_bytes)
    : space_(space), memory_limit_bytes_(memory_limit_bytes) {
  assert(space.dims() >= 1 && space.dims() <= kMaxDims);
}

int StaticHistogram::MaxIntervalsForBudget() const {
  const int d = space_.dims();
  int best = 1;
  for (int n = 1;; ++n) {
    // n^d buckets at 8 bytes plus the variant's boundary storage.
    double buckets = std::pow(static_cast<double>(n), d);
    if (buckets > 1e15) break;  // Overflow guard; budget will stop us first.
    int64_t bytes = static_cast<int64_t>(buckets) * 8 +
                    static_cast<int64_t>(d) * BoundaryBytesPerDim(n);
    if (bytes > memory_limit_bytes_) break;
    best = n;
  }
  return best;
}

void StaticHistogram::Train(std::span<const Point> points,
                            std::span<const double> costs) {
  assert(points.size() == costs.size());
  const int d = space_.dims();
  intervals_per_dim_ = MaxIntervalsForBudget();

  // Per-dimension sorted training coordinates for boundary selection.
  boundaries_.assign(static_cast<size_t>(d), {});
  std::vector<double> sorted;
  sorted.reserve(points.size());
  for (int dim = 0; dim < d; ++dim) {
    sorted.clear();
    for (const Point& p : points) sorted.push_back(p[dim]);
    std::sort(sorted.begin(), sorted.end());
    boundaries_[static_cast<size_t>(dim)] = ChooseBoundaries(dim, sorted);
    assert(static_cast<int>(boundaries_[static_cast<size_t>(dim)].size()) ==
           intervals_per_dim_ - 1);
  }

  int64_t buckets = 1;
  for (int dim = 0; dim < d; ++dim) buckets *= intervals_per_dim_;
  bucket_avgs_.assign(static_cast<size_t>(buckets), 0.0);
  bucket_counts_.assign(static_cast<size_t>(buckets), 0);

  // Aggregate training executions per bucket.
  std::vector<double> sums(static_cast<size_t>(buckets), 0.0);
  double total = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    const int64_t b = BucketIndexOf(points[i]);
    sums[static_cast<size_t>(b)] += costs[i];
    bucket_counts_[static_cast<size_t>(b)] += 1;
    total += costs[i];
  }
  for (size_t b = 0; b < sums.size(); ++b) {
    if (bucket_counts_[b] > 0) {
      bucket_avgs_[b] = sums[b] / static_cast<double>(bucket_counts_[b]);
    }
  }
  global_avg_ = points.empty() ? 0.0 : total / static_cast<double>(points.size());

  charged_bytes_ = buckets * 8;
  for (int dim = 0; dim < d; ++dim) {
    charged_bytes_ += BoundaryBytesPerDim(intervals_per_dim_);
  }
  trained_ = true;
}

int StaticHistogram::IntervalOf(int dim, double coordinate) const {
  const std::vector<double>& bounds = boundaries_[static_cast<size_t>(dim)];
  // Inner boundaries partition [lo, hi] into bounds.size()+1 intervals;
  // interval k covers [bounds[k-1], bounds[k]).
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), coordinate);
  return static_cast<int>(it - bounds.begin());
}

int64_t StaticHistogram::BucketIndexOf(const Point& point) const {
  const int d = space_.dims();
  int64_t index = 0;
  for (int dim = 0; dim < d; ++dim) {
    double c = point[dim];
    // Clamp out-of-range coordinates onto the space, as MLQ does.
    c = std::clamp(c, space_.lo()[dim], space_.hi()[dim]);
    index = index * intervals_per_dim_ + IntervalOf(dim, c);
  }
  return index;
}

double StaticHistogram::Predict(const Point& point) const {
  if (!trained_) return 0.0;
  const int64_t b = BucketIndexOf(point);
  if (bucket_counts_[static_cast<size_t>(b)] == 0) {
    // Empty bucket: fall back to the global training average.
    return global_avg_;
  }
  return bucket_avgs_[static_cast<size_t>(b)];
}

CostEstimate StaticHistogram::PredictStats(const Point& point) const {
  CostEstimate e;
  e.value = Predict(point);
  if (!trained_) return e;
  const int64_t count = bucket_counts_[static_cast<size_t>(BucketIndexOf(point))];
  e.count = count;
  e.reliable = count > 0;
  return e;
}

EquiWidthHistogram::EquiWidthHistogram(const Box& space,
                                       int64_t memory_limit_bytes)
    : StaticHistogram(space, memory_limit_bytes) {}

std::vector<double> EquiWidthHistogram::ChooseBoundaries(
    int dim, std::span<const double> sorted_coords) const {
  (void)sorted_coords;
  const int n = intervals_per_dim();
  const double lo = space().lo()[dim];
  const double width = space().Extent(dim) / n;
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(n - 1));
  for (int k = 1; k < n; ++k) bounds.push_back(lo + width * k);
  return bounds;
}

InfluenceWeightedHistogram::InfluenceWeightedHistogram(
    const Box& space, int64_t memory_limit_bytes)
    : space_(space), memory_limit_bytes_(memory_limit_bytes) {
  assert(space.dims() >= 1 && space.dims() <= kMaxDims);
}

void InfluenceWeightedHistogram::Train(std::span<const Point> points,
                                       std::span<const double> costs) {
  assert(points.size() == costs.size());
  const int d = space_.dims();

  // 1. Influence per dimension: variance of per-slab mean costs over
  //    kProbeIntervals equi-width slabs (between-group variance).
  influence_.assign(static_cast<size_t>(d), 0.0);
  double total = 0.0;
  for (double c : costs) total += c;
  global_avg_ = points.empty() ? 0.0 : total / static_cast<double>(points.size());
  for (int dim = 0; dim < d; ++dim) {
    double slab_sum[kProbeIntervals] = {0.0};
    int64_t slab_count[kProbeIntervals] = {0};
    const double lo = space_.lo()[dim];
    const double width = space_.Extent(dim) / kProbeIntervals;
    for (size_t i = 0; i < points.size(); ++i) {
      int slab = width > 0.0
                     ? static_cast<int>((points[i][dim] - lo) / width)
                     : 0;
      slab = std::clamp(slab, 0, kProbeIntervals - 1);
      slab_sum[slab] += costs[i];
      ++slab_count[slab];
    }
    double between = 0.0;
    for (int s = 0; s < kProbeIntervals; ++s) {
      if (slab_count[s] == 0) continue;
      const double mean = slab_sum[s] / static_cast<double>(slab_count[s]);
      between += static_cast<double>(slab_count[s]) *
                 (mean - global_avg_) * (mean - global_avg_);
    }
    influence_[static_cast<size_t>(dim)] = between;
  }

  // 2. Greedy interval allocation: double the intervals of the currently
  //    most influential under-resolved dimension while the grid fits.
  //    "Remaining influence" of a dimension shrinks as it gains intervals
  //    (dividing by the interval count approximates the unexplained part).
  intervals_.assign(static_cast<size_t>(d), 1);
  auto grid_bytes = [this, d]() {
    int64_t buckets = 1;
    for (int dim = 0; dim < d; ++dim) buckets *= intervals_[static_cast<size_t>(dim)];
    int64_t boundary_bytes = 0;
    for (int dim = 0; dim < d; ++dim) {
      boundary_bytes += 8 * (intervals_[static_cast<size_t>(dim)] - 1);
    }
    // 8 bytes per bucket average + stored boundaries + one byte per dim for
    // the interval count itself.
    return buckets * 8 + boundary_bytes + d;
  };
  while (true) {
    int best_dim = -1;
    double best_score = 0.0;
    for (int dim = 0; dim < d; ++dim) {
      const double score = influence_[static_cast<size_t>(dim)] /
                           static_cast<double>(intervals_[static_cast<size_t>(dim)]);
      if (score > best_score) {
        best_score = score;
        best_dim = dim;
      }
    }
    if (best_dim < 0) break;  // No dimension has any influence.
    intervals_[static_cast<size_t>(best_dim)] *= 2;
    if (grid_bytes() > memory_limit_bytes_) {
      intervals_[static_cast<size_t>(best_dim)] /= 2;
      break;
    }
  }

  // 3. Aggregate the buckets (equi-width within each dimension).
  int64_t buckets = 1;
  for (int dim = 0; dim < d; ++dim) buckets *= intervals_[static_cast<size_t>(dim)];
  bucket_avgs_.assign(static_cast<size_t>(buckets), 0.0);
  bucket_counts_.assign(static_cast<size_t>(buckets), 0);
  std::vector<double> sums(static_cast<size_t>(buckets), 0.0);
  for (size_t i = 0; i < points.size(); ++i) {
    const int64_t b = BucketIndexOf(points[i]);
    sums[static_cast<size_t>(b)] += costs[i];
    ++bucket_counts_[static_cast<size_t>(b)];
  }
  for (size_t b = 0; b < sums.size(); ++b) {
    if (bucket_counts_[b] > 0) {
      bucket_avgs_[b] = sums[b] / static_cast<double>(bucket_counts_[b]);
    }
  }
  charged_bytes_ = grid_bytes();
  trained_ = true;
}

int64_t InfluenceWeightedHistogram::BucketIndexOf(const Point& point) const {
  const int d = space_.dims();
  int64_t index = 0;
  for (int dim = 0; dim < d; ++dim) {
    const int n = intervals_[static_cast<size_t>(dim)];
    const double lo = space_.lo()[dim];
    const double width = space_.Extent(dim) / n;
    const double c = std::clamp(point[dim], lo, space_.hi()[dim]);
    int interval = width > 0.0 ? static_cast<int>((c - lo) / width) : 0;
    interval = std::clamp(interval, 0, n - 1);
    index = index * n + interval;
  }
  return index;
}

double InfluenceWeightedHistogram::Predict(const Point& point) const {
  if (!trained_) return 0.0;
  const int64_t b = BucketIndexOf(point);
  if (bucket_counts_[static_cast<size_t>(b)] == 0) return global_avg_;
  return bucket_avgs_[static_cast<size_t>(b)];
}

CostEstimate InfluenceWeightedHistogram::PredictStats(
    const Point& point) const {
  CostEstimate e;
  e.value = Predict(point);
  if (!trained_) return e;
  const int64_t count = bucket_counts_[static_cast<size_t>(BucketIndexOf(point))];
  e.count = count;
  e.reliable = count > 0;
  return e;
}

EquiHeightHistogram::EquiHeightHistogram(const Box& space,
                                         int64_t memory_limit_bytes)
    : StaticHistogram(space, memory_limit_bytes) {}

std::vector<double> EquiHeightHistogram::ChooseBoundaries(
    int dim, std::span<const double> sorted_coords) const {
  const int n = intervals_per_dim();
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(n - 1));
  if (sorted_coords.empty()) {
    // No training data: degenerate to equi-width so the grid stays valid.
    const double lo = space().lo()[dim];
    const double width = space().Extent(dim) / n;
    for (int k = 1; k < n; ++k) bounds.push_back(lo + width * k);
    return bounds;
  }
  const size_t m = sorted_coords.size();
  for (int k = 1; k < n; ++k) {
    // Boundary at the k/n quantile of the training marginal.
    size_t rank = (static_cast<size_t>(k) * m) / static_cast<size_t>(n);
    if (rank >= m) rank = m - 1;
    bounds.push_back(sorted_coords[rank]);
  }
  // Quantiles of highly duplicated marginals can coincide; keep them
  // non-decreasing (zero-width intervals simply never win a lookup).
  for (size_t i = 1; i < bounds.size(); ++i) {
    bounds[i] = std::max(bounds[i], bounds[i - 1]);
  }
  return bounds;
}

}  // namespace mlq
