#ifndef MLQ_MODEL_ONLINE_GRID_MODEL_H_
#define MLQ_MODEL_ONLINE_GRID_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/stats.h"
#include "model/cost_model.h"

namespace mlq {

// STGrid-style baseline: a *flat* self-tuning grid.
//
// The paper positions MLQ against the self-tuning histogram line of work
// (STGrid, STHoles — Section 2.2) but never compares against a flat
// feedback-driven structure. This model fills that gap: a fixed equi-width
// grid sized to the memory budget whose bucket summaries update from the
// same query feedback MLQ consumes. It shares MLQ's self-tuning loop but
// has no multi-resolution hierarchy, no workload-adaptive refinement and no
// compression — so comparing the two isolates what the quadtree machinery
// itself contributes (bench/ablation_baselines).
class OnlineGridModel : public CostModel {
 public:
  OnlineGridModel(const Box& space, int64_t memory_limit_bytes);

  std::string_view name() const override { return "ST-GRID"; }
  double Predict(const Point& point) const override;
  // Native stats: buckets are summary triples, so the serving bucket's
  // stddev/count are free; the global fallback reports the global spread
  // with reliable = false (nothing local known).
  CostEstimate PredictStats(const Point& point) const override;
  void Observe(const Point& point, double actual_cost) override;
  int64_t MemoryBytes() const override { return charged_bytes_; }
  bool IsSelfTuning() const override { return true; }
  ModelUpdateBreakdown update_breakdown() const override { return breakdown_; }

  int intervals_per_dim() const { return intervals_per_dim_; }
  int64_t num_buckets() const { return static_cast<int64_t>(buckets_.size()); }

 private:
  int64_t BucketIndexOf(const Point& point) const;

  Box space_;
  int intervals_per_dim_;
  std::vector<SummaryTriple> buckets_;
  SummaryTriple global_;
  int64_t charged_bytes_;
  ModelUpdateBreakdown breakdown_;
};

}  // namespace mlq

#endif  // MLQ_MODEL_ONLINE_GRID_MODEL_H_
