#include "model/mlq_model.h"

#include <cassert>

namespace mlq {
namespace {

std::string NameFor(InsertionStrategy strategy) {
  return strategy == InsertionStrategy::kEager ? "MLQ-E" : "MLQ-L";
}

}  // namespace

MlqModel::MlqModel(const Box& space, const MlqConfig& config)
    : MlqModel(space, config, nullptr) {}

MlqModel::MlqModel(const Box& space, const MlqConfig& config,
                   std::shared_ptr<SharedNodeArena> arena)
    : tree_(std::make_unique<MemoryLimitedQuadtree>(space, config,
                                                    std::move(arena))),
      name_(NameFor(config.strategy)) {}

MlqModel::MlqModel(std::unique_ptr<MemoryLimitedQuadtree> tree)
    : tree_(std::move(tree)) {
  assert(tree_ != nullptr);
  name_ = NameFor(tree_->config().strategy);
}

double MlqModel::Predict(const Point& point) const {
  return tree_->Predict(point).value;
}

void MlqModel::Observe(const Point& point, double actual_cost) {
  tree_->Insert(point, actual_cost);
}

ModelUpdateBreakdown MlqModel::update_breakdown() const {
  const QuadtreeCounters& counters = tree_->counters();
  ModelUpdateBreakdown breakdown;
  breakdown.insert_seconds = counters.insert_seconds;
  breakdown.compress_seconds = counters.compress_seconds;
  breakdown.insertions = counters.insertions;
  breakdown.compressions = counters.compressions;
  return breakdown;
}

}  // namespace mlq
