#ifndef MLQ_MODEL_NEURAL_MODEL_H_
#define MLQ_MODEL_NEURAL_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "model/cost_model.h"

namespace mlq {

// Curve-fitting baseline: a small multi-layer perceptron trained online.
//
// The paper cites Boulos et al.'s neural-network approach to UDF cost
// estimation as the only other automated method, and declines to compare
// against it ("complex to implement and very slow to train"). We implement
// it anyway — adapted to the self-tuning setting by training incrementally
// with stochastic gradient descent on each feedback observation — so the
// repository can quantify that trade-off (bench/ablation_baselines).
//
// Architecture: inputs scaled to [0, 1] per dimension, one tanh hidden
// layer, linear output; targets are standardized online by the running
// mean/stddev of observed costs. The hidden width is chosen as the largest
// that fits the same byte budget as the other models (8 bytes per weight),
// so comparisons are at equal memory.
class NeuralCostModel : public CostModel {
 public:
  struct Options {
    double learning_rate = 0.05;
    // Multiplied into the step size as 1 / (1 + decay * t).
    double learning_rate_decay = 1e-4;
    uint64_t seed = 13;
    // SGD passes per Observe call.
    int steps_per_observation = 1;
  };

  NeuralCostModel(const Box& space, int64_t memory_limit_bytes);
  NeuralCostModel(const Box& space, int64_t memory_limit_bytes,
                  const Options& options);

  std::string_view name() const override { return "NN"; }
  double Predict(const Point& point) const override;
  // Stats default: the MLP keeps no local second moment, so the global
  // online target stddev serves as a coarse, uniform uncertainty; count is
  // the total observations the net has trained on.
  CostEstimate PredictStats(const Point& point) const override;
  void Observe(const Point& point, double actual_cost) override;
  int64_t MemoryBytes() const override;
  bool IsSelfTuning() const override { return true; }
  ModelUpdateBreakdown update_breakdown() const override { return breakdown_; }

  int hidden_units() const { return hidden_; }
  int64_t observations() const { return observations_; }

 private:
  // Scales `point` into the unit cube.
  void Normalize(const Point& point, std::vector<double>* out) const;
  // Forward pass; fills the hidden activations and returns the raw
  // (standardized) output.
  double Forward(const std::vector<double>& input,
                 std::vector<double>* hidden_activations) const;

  Box space_;
  Options options_;
  int inputs_;
  int hidden_;

  // Parameters: w1_[h * inputs_ + i], b1_[h], w2_[h], b2_.
  std::vector<double> w1_;
  std::vector<double> b1_;
  std::vector<double> w2_;
  double b2_ = 0.0;

  // Online target standardization.
  double target_mean_ = 0.0;
  double target_m2_ = 0.0;
  int64_t observations_ = 0;

  ModelUpdateBreakdown breakdown_;
};

}  // namespace mlq

#endif  // MLQ_MODEL_NEURAL_MODEL_H_
