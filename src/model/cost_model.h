#ifndef MLQ_MODEL_COST_MODEL_H_
#define MLQ_MODEL_COST_MODEL_H_

#include <cmath>
#include <cstdint>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "common/geometry.h"
#include "quadtree/memory_limited_quadtree.h"

namespace mlq {

// Breakdown of the time a model spent updating itself, matching the
// modeling-cost decomposition of Experiment 2 (Fig. 10): IC = insertion
// cost, CC = compression cost, MUC = IC + CC.
struct ModelUpdateBreakdown {
  double insert_seconds = 0.0;
  double compress_seconds = 0.0;
  int64_t insertions = 0;
  int64_t compressions = 0;

  double UpdateSeconds() const { return insert_seconds + compress_seconds; }
};

// The model-boundary prediction currency: a predicted value together with
// the uncertainty the model can attach to it. The quadtree's stored
// sum-of-squares makes stddev free for MLQ (sqrt(SSE/C) of the chosen
// node, Fig. 3); other models report whatever coarser confidence they
// have. `count` is the number of observations supporting the value (0 =
// unsupported default) and `reliable` mirrors Prediction::reliable.
//
// Scalar Predict() remains the thin value-only shim — PredictStats().value
// is exactly Predict(), bit for bit, so variance-blind callers are
// unchanged while risk-aware ones (the optimizer's ordering, the join
// enumerator) read the full estimate.
struct CostEstimate {
  double value = 0.0;
  double stddev = 0.0;
  int64_t count = 0;
  bool reliable = false;

  static CostEstimate FromPrediction(const Prediction& p) {
    return CostEstimate{p.value, p.stddev, p.count, p.reliable};
  }

  // Half-width of the ~95% normal confidence interval on the value, given
  // that it averages `count` observations. 0 when nothing supports it.
  double ConfidenceHalfWidth() const {
    if (count <= 0) return 0.0;
    return 1.96 * stddev / std::sqrt(static_cast<double>(count));
  }
};

// A UDF execution-cost model: maps a point in model-variable space to a
// predicted cost (Section 3 of the paper). One instance models one cost
// kind (CPU or disk IO) of one UDF.
//
// Self-tuning models (MLQ) learn from Observe feedback delivered by the
// execution engine after each UDF call; static models (SH) are trained
// a-priori and ignore feedback.
class CostModel {
 public:
  virtual ~CostModel() = default;

  // Short display name, e.g. "MLQ-E", "SH-H".
  virtual std::string_view name() const = 0;

  // Predicted cost at `point`. Never fails: models fall back to coarser
  // information (up to a global average, or 0 when nothing is known).
  virtual double Predict(const Point& point) const = 0;

  // Prediction with confidence detail (supporting count, depth,
  // reliability) for models that can provide it. The default wraps
  // Predict in an unreliable zero-count Prediction, which callers that
  // branch on `count`/`reliable` treat as "nothing known".
  virtual Prediction PredictDetailed(const Point& point) const {
    Prediction p;
    p.value = Predict(point);
    return p;
  }

  // Batched prediction: out[i] = PredictDetailed(points[i]), with
  // `out.size() == points.size()`. Models that can amortize per-call costs
  // over the batch (lock acquisition, shard dispatch, cache-resident tree
  // descents) override this; the default is a plain loop, so batching is
  // never worse than point-at-a-time.
  virtual void PredictBatch(std::span<const Point> points,
                            std::span<Prediction> out) const {
    for (size_t i = 0; i < points.size(); ++i) {
      out[i] = PredictDetailed(points[i]);
    }
  }

  // Prediction with uncertainty, in the model-boundary currency. The
  // default derives it from PredictDetailed, so PredictStats(p).value ==
  // Predict(p) exactly for every model whose PredictDetailed wraps
  // Predict (the interface contract — the differential tests enforce it).
  // Models with richer internal state (MLQ trees, summary-triple buckets)
  // override this to fill stddev/count natively.
  virtual CostEstimate PredictStats(const Point& point) const {
    return CostEstimate::FromPrediction(PredictDetailed(point));
  }

  // Batched form: out[i] = PredictStats(points[i]), with
  // `out.size() == points.size()`. The default routes through PredictBatch
  // so decorated models (one lock per batch, shard gather/scatter) keep
  // their amortization; per-point stats are preserved element-wise.
  virtual void PredictStatsBatch(std::span<const Point> points,
                                 std::span<CostEstimate> out) const {
    std::vector<Prediction> scratch(points.size());
    PredictBatch(points, scratch);
    for (size_t i = 0; i < points.size(); ++i) {
      out[i] = CostEstimate::FromPrediction(scratch[i]);
    }
  }

  // Query feedback: the actual cost observed at `point`. Static models
  // ignore this.
  virtual void Observe(const Point& point, double actual_cost) = 0;

  // Batched feedback: applies the observations in order, semantically
  // identical to calling Observe per element. Models that can amortize
  // per-call costs (one lock per batch, one shard dispatch per batch, one
  // timed tree entry per batch) override this; the default is a plain
  // loop, so every model — static histograms included — takes batches
  // unmodified.
  virtual void ObserveBatch(std::span<const Observation> batch) {
    for (const Observation& o : batch) Observe(o.point, o.value);
  }

  // Locks that quiesce this model for stop-the-world maintenance (shared
  // arena compaction): once every returned lock is held, no thread can be
  // inside the model holding node indices. Models without internal locking
  // return nothing — their owner is responsible for exclusivity, as with
  // any other call on a thread-compatible model.
  virtual std::vector<std::unique_lock<std::mutex>> LockForMaintenance() {
    return {};
  }

  // Forces any internally buffered feedback to be applied (models that
  // queue observations, e.g. ShardedCostModel). Default: feedback is
  // applied synchronously in Observe, nothing to do.
  virtual void Flush() {}

  // Advances the model's summary-decay clock by `epochs` (windowed-summary
  // extension; see MlqConfig::decay_half_life). The maintenance layer is
  // the clock source: one epoch per scheduler tick in steady state, a
  // burst after a detected drift to accelerate forgetting. Models without
  // decay (static histograms, decay-off quadtrees) ignore it.
  virtual void AdvanceDecayEpoch(int64_t /*epochs*/) {}

  // Re-targets the model's logical byte budget (catalog governors
  // redistribute budget across entries at runtime). Shrinking triggers an
  // eviction-compression pass until the model fits; growing raises the
  // ceiling for future learning. Returns false for models with a fixed
  // footprint (static histograms), which ignore the call.
  virtual bool SetByteBudget(int64_t /*limit_bytes*/) { return false; }

  // Logical bytes currently charged against the model's budget.
  virtual int64_t MemoryBytes() const = 0;

  // Materialized tree nodes backing the model; 0 for models without a
  // node structure (static histograms). Health telemetry reads this
  // alongside MemoryBytes for a bytes-per-node view.
  virtual int64_t NodeCount() const { return 0; }

  // True when Observe actually updates the model.
  virtual bool IsSelfTuning() const = 0;

  // Update-cost accounting; static models report zeros.
  virtual ModelUpdateBreakdown update_breakdown() const { return {}; }
};

}  // namespace mlq

#endif  // MLQ_MODEL_COST_MODEL_H_
