#ifndef MLQ_MODEL_MLQ_MODEL_H_
#define MLQ_MODEL_MLQ_MODEL_H_

#include <memory>
#include <string>

#include "model/cost_model.h"
#include "quadtree/memory_limited_quadtree.h"

namespace mlq {

// CostModel adapter over the memory-limited quadtree: the paper's MLQ-E
// (eager) and MLQ-L (lazy) methods, depending on config.strategy.
class MlqModel : public CostModel {
 public:
  MlqModel(const Box& space, const MlqConfig& config);

  // Same, drawing nodes from a shared catalog arena (may be null).
  MlqModel(const Box& space, const MlqConfig& config,
           std::shared_ptr<SharedNodeArena> arena);

  // Adopts an existing tree (catalog reload of a serialized snapshot:
  // DeserializeQuadtree rebuilds the tree, this wraps it back into a
  // servable model with bit-identical predictions). `tree` must be
  // non-null.
  explicit MlqModel(std::unique_ptr<MemoryLimitedQuadtree> tree);

  std::string_view name() const override { return name_; }
  double Predict(const Point& point) const override;
  void Observe(const Point& point, double actual_cost) override;
  void ObserveBatch(std::span<const Observation> batch) override {
    tree_->InsertBatch(batch);
  }
  // Gather form of ObserveBatch: applies all[indices[...]] in index order
  // without copying the selected observations (see the tree's gather
  // InsertBatch overload).
  void ObserveGather(std::span<const Observation> all,
                     std::span<const uint32_t> indices) {
    tree_->InsertBatch(all, indices);
  }
  int64_t MemoryBytes() const override { return tree_->memory_used(); }
  int64_t NodeCount() const override { return tree_->num_nodes(); }
  bool IsSelfTuning() const override { return true; }
  void AdvanceDecayEpoch(int64_t epochs) override {
    tree_->AdvanceDecayEpoch(epochs);
  }
  bool SetByteBudget(int64_t limit_bytes) override {
    tree_->SetMemoryLimit(limit_bytes);
    return true;
  }
  ModelUpdateBreakdown update_breakdown() const override;

  // Full prediction detail (depth, count, reliability).
  Prediction PredictDetailed(const Point& point) const override {
    return tree_->Predict(point);
  }

  // Batched descent straight into the pooled tree.
  void PredictBatch(std::span<const Point> points,
                    std::span<Prediction> out) const override {
    tree_->PredictBatch(points, out);
  }

  // Native stats: the tree's stored sum-of-squares makes the full
  // CostEstimate free — one descent, no extra work over Predict.
  CostEstimate PredictStats(const Point& point) const override {
    return CostEstimate::FromPrediction(tree_->Predict(point));
  }

  void PredictStatsBatch(std::span<const Point> points,
                         std::span<CostEstimate> out) const override {
    std::vector<Prediction> scratch(points.size());
    tree_->PredictBatch(points, scratch);
    for (size_t i = 0; i < points.size(); ++i) {
      out[i] = CostEstimate::FromPrediction(scratch[i]);
    }
  }

  const MemoryLimitedQuadtree& tree() const { return *tree_; }

 private:
  std::unique_ptr<MemoryLimitedQuadtree> tree_;
  std::string name_;
};

}  // namespace mlq

#endif  // MLQ_MODEL_MLQ_MODEL_H_
