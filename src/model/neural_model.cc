#include "model/neural_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "common/timer.h"

namespace mlq {

NeuralCostModel::NeuralCostModel(const Box& space, int64_t memory_limit_bytes)
    : NeuralCostModel(space, memory_limit_bytes, Options()) {}

NeuralCostModel::NeuralCostModel(const Box& space, int64_t memory_limit_bytes,
                                 const Options& options)
    : space_(space), options_(options), inputs_(space.dims()) {
  // Parameters: hidden * inputs + hidden + hidden + 1, at 8 bytes each.
  // Choose the widest hidden layer that fits the budget (at least 2).
  const int64_t max_params = std::max<int64_t>(memory_limit_bytes / 8, 1);
  int hidden = static_cast<int>((max_params - 1) / (inputs_ + 2));
  hidden_ = std::clamp(hidden, 2, 256);

  Rng rng(options.seed);
  // Xavier-style initialization scaled by fan-in.
  const double scale1 = 1.0 / std::sqrt(static_cast<double>(inputs_));
  const double scale2 = 1.0 / std::sqrt(static_cast<double>(hidden_));
  w1_.resize(static_cast<size_t>(hidden_ * inputs_));
  b1_.assign(static_cast<size_t>(hidden_), 0.0);
  w2_.resize(static_cast<size_t>(hidden_));
  for (double& w : w1_) w = rng.Uniform(-scale1, scale1);
  for (double& w : w2_) w = rng.Uniform(-scale2, scale2);
}

void NeuralCostModel::Normalize(const Point& point,
                                std::vector<double>* out) const {
  out->resize(static_cast<size_t>(inputs_));
  for (int d = 0; d < inputs_; ++d) {
    const double extent = space_.Extent(d);
    double unit = extent > 0.0 ? (point[d] - space_.lo()[d]) / extent : 0.0;
    (*out)[static_cast<size_t>(d)] = std::clamp(unit, 0.0, 1.0);
  }
}

double NeuralCostModel::Forward(const std::vector<double>& input,
                                std::vector<double>* hidden_activations) const {
  hidden_activations->resize(static_cast<size_t>(hidden_));
  double output = b2_;
  for (int h = 0; h < hidden_; ++h) {
    double pre = b1_[static_cast<size_t>(h)];
    const double* row = &w1_[static_cast<size_t>(h * inputs_)];
    for (int i = 0; i < inputs_; ++i) pre += row[i] * input[static_cast<size_t>(i)];
    const double activation = std::tanh(pre);
    (*hidden_activations)[static_cast<size_t>(h)] = activation;
    output += w2_[static_cast<size_t>(h)] * activation;
  }
  return output;
}

double NeuralCostModel::Predict(const Point& point) const {
  if (observations_ == 0) return 0.0;
  std::vector<double> input;
  Normalize(point, &input);
  std::vector<double> hidden;
  const double standardized = Forward(input, &hidden);
  const double stddev =
      observations_ > 1
          ? std::sqrt(target_m2_ / static_cast<double>(observations_))
          : 1.0;
  // De-standardize; costs are non-negative.
  return std::max(0.0, target_mean_ + standardized * stddev);
}

CostEstimate NeuralCostModel::PredictStats(const Point& point) const {
  CostEstimate e;
  e.value = Predict(point);
  e.count = observations_;
  e.reliable = observations_ > 0;
  e.stddev = observations_ > 1
                 ? std::sqrt(target_m2_ / static_cast<double>(observations_))
                 : 0.0;
  return e;
}

void NeuralCostModel::Observe(const Point& point, double actual_cost) {
  WallTimer timer;
  ++observations_;
  ++breakdown_.insertions;

  // Update the running target statistics (Welford).
  const double delta = actual_cost - target_mean_;
  target_mean_ += delta / static_cast<double>(observations_);
  target_m2_ += delta * (actual_cost - target_mean_);
  const double stddev =
      observations_ > 1
          ? std::sqrt(target_m2_ / static_cast<double>(observations_))
          : 1.0;
  const double target =
      stddev > 0.0 ? (actual_cost - target_mean_) / stddev : 0.0;

  std::vector<double> input;
  Normalize(point, &input);
  std::vector<double> hidden;
  const double rate =
      options_.learning_rate /
      (1.0 + options_.learning_rate_decay * static_cast<double>(observations_));

  for (int step = 0; step < options_.steps_per_observation; ++step) {
    const double output = Forward(input, &hidden);
    const double error = output - target;  // d(loss)/d(output), loss = e^2/2.
    // Output layer.
    for (int h = 0; h < hidden_; ++h) {
      const double gradient = error * hidden[static_cast<size_t>(h)];
      // Backprop into the hidden layer before updating w2.
      const double upstream = error * w2_[static_cast<size_t>(h)];
      const double act = hidden[static_cast<size_t>(h)];
      const double pre_gradient = upstream * (1.0 - act * act);  // tanh'.
      double* row = &w1_[static_cast<size_t>(h * inputs_)];
      for (int i = 0; i < inputs_; ++i) {
        row[i] -= rate * pre_gradient * input[static_cast<size_t>(i)];
      }
      b1_[static_cast<size_t>(h)] -= rate * pre_gradient;
      w2_[static_cast<size_t>(h)] -= rate * gradient;
    }
    b2_ -= rate * error;
  }
  breakdown_.insert_seconds += timer.ElapsedSeconds();
}

int64_t NeuralCostModel::MemoryBytes() const {
  return 8 * static_cast<int64_t>(w1_.size() + b1_.size() + w2_.size() + 1);
}

}  // namespace mlq
