#ifndef MLQ_MODEL_CONCURRENT_MODEL_H_
#define MLQ_MODEL_CONCURRENT_MODEL_H_

#include <memory>
#include <mutex>

#include "model/cost_model.h"
#include "obs/obs.h"

namespace mlq {

// Thread-safety decorator.
//
// Real optimizers plan queries concurrently while executors deliver
// feedback; the underlying models are deliberately single-threaded (the
// paper's setting, and the fast path stays lock-free when a model is owned
// by one session). Wrapping a model in ConcurrentCostModel serializes all
// access behind one mutex — correct and simple; predictions are ~100 ns,
// so a contended mutex still supports millions of operations per second.
class ConcurrentCostModel : public CostModel {
 public:
  explicit ConcurrentCostModel(std::unique_ptr<CostModel> inner)
      : inner_(std::move(inner)) {}

  std::string_view name() const override { return inner_->name(); }

  double Predict(const Point& point) const override {
    std::lock_guard<std::mutex> lock(mutex_, LockTimed());
    return inner_->Predict(point);
  }

  Prediction PredictDetailed(const Point& point) const override {
    std::lock_guard<std::mutex> lock(mutex_, LockTimed());
    return inner_->PredictDetailed(point);
  }

  // One lock acquisition for the whole batch: under contention this is the
  // main benefit of batching through the decorator.
  void PredictBatch(std::span<const Point> points,
                    std::span<Prediction> out) const override {
    std::lock_guard<std::mutex> lock(mutex_, LockTimed());
    inner_->PredictBatch(points, out);
  }

  CostEstimate PredictStats(const Point& point) const override {
    std::lock_guard<std::mutex> lock(mutex_, LockTimed());
    return inner_->PredictStats(point);
  }

  // Like PredictBatch: the whole stats batch rides one lock acquisition.
  void PredictStatsBatch(std::span<const Point> points,
                         std::span<CostEstimate> out) const override {
    std::lock_guard<std::mutex> lock(mutex_, LockTimed());
    inner_->PredictStatsBatch(points, out);
  }

  void Observe(const Point& point, double actual_cost) override {
    std::lock_guard<std::mutex> lock(mutex_, LockTimed());
    inner_->Observe(point, actual_cost);
  }

  // The feedback twin of PredictBatch: one lock acquisition per batch.
  void ObserveBatch(std::span<const Observation> batch) override {
    std::lock_guard<std::mutex> lock(mutex_, LockTimed());
    inner_->ObserveBatch(batch);
  }

  void AdvanceDecayEpoch(int64_t epochs) override {
    std::lock_guard<std::mutex> lock(mutex_, LockTimed());
    inner_->AdvanceDecayEpoch(epochs);
  }

  // Budget re-targeting quiesces the model for the (possibly compressing)
  // resize, exactly like any other mutation.
  bool SetByteBudget(int64_t limit_bytes) override {
    std::lock_guard<std::mutex> lock(mutex_, LockTimed());
    return inner_->SetByteBudget(limit_bytes);
  }

  std::vector<std::unique_lock<std::mutex>> LockForMaintenance() override {
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.emplace_back(mutex_);
    return locks;
  }

  int64_t MemoryBytes() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->MemoryBytes();
  }

  int64_t NodeCount() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->NodeCount();
  }

  bool IsSelfTuning() const override { return inner_->IsSelfTuning(); }

  ModelUpdateBreakdown update_breakdown() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->update_breakdown();
  }

  // Access to the wrapped model for single-threaded phases (no locking;
  // callers must guarantee exclusivity).
  CostModel& inner() { return *inner_; }

 private:
  // Acquires mutex_ and, when observability is on, records the time spent
  // blocked on it. Returning adopt_lock lets the public methods keep their
  // one-line lock_guard shape with zero cost when observability is off.
  std::adopt_lock_t LockTimed() const {
    if (obs::Enabled()) {
      const int64_t t0 = obs::NowNs();
      mutex_.lock();
      obs::Core().lock_wait_ns.Record(obs::NowNs() - t0);
    } else {
      mutex_.lock();
    }
    return std::adopt_lock;
  }

  mutable std::mutex mutex_;
  std::unique_ptr<CostModel> inner_;
};

}  // namespace mlq

#endif  // MLQ_MODEL_CONCURRENT_MODEL_H_
