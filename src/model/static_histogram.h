#ifndef MLQ_MODEL_STATIC_HISTOGRAM_H_
#define MLQ_MODEL_STATIC_HISTOGRAM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/stats.h"
#include "model/cost_model.h"

namespace mlq {

// Base for the static-histogram (SH) UDF cost models of Jihad & Kinji
// (SIGMOD Record 1999), the baseline the paper compares MLQ against
// (Section 2.1 / 5.1). Both variants build a d-dimensional grid of buckets,
// each storing the average observed cost of the training executions that
// fall into it. They are trained once, a-priori, and never updated: Observe
// is a no-op.
//
// Memory accounting (to match MLQ at equal budgets): 8 bytes per bucket for
// the stored average, plus — for the equi-height variant — 8 bytes per
// stored interval boundary per dimension. The per-dimension interval count
// N is chosen as the largest value whose representation fits the budget.
class StaticHistogram : public CostModel {
 public:
  StaticHistogram(const Box& space, int64_t memory_limit_bytes);

  // Trains on parallel arrays of model points and their observed costs.
  // Replaces any previous training. Derived classes first choose the
  // interval boundaries, then the base aggregates bucket contents.
  void Train(std::span<const Point> points, std::span<const double> costs);

  double Predict(const Point& point) const override;
  // Stats default: value == Predict exactly; count is the serving bucket's
  // training population; stddev stays 0 (buckets store averages, not
  // second moments). reliable only when a non-empty bucket answered —
  // the global-average fallback is flagged like MLQ's root fallback.
  CostEstimate PredictStats(const Point& point) const override;
  void Observe(const Point& point, double actual_cost) override {
    (void)point;
    (void)actual_cost;  // Static: not self-tuning.
  }
  int64_t MemoryBytes() const override { return charged_bytes_; }
  bool IsSelfTuning() const override { return false; }

  int intervals_per_dim() const { return intervals_per_dim_; }
  int64_t num_buckets() const { return static_cast<int64_t>(bucket_avgs_.size()); }
  bool trained() const { return trained_; }
  const Box& space() const { return space_; }

 protected:
  // Catalog persistence reads and restores trained state directly
  // (model/serialization.h).
  friend std::vector<uint8_t> SerializeHistogram(const StaticHistogram&);
  friend std::unique_ptr<StaticHistogram> DeserializeHistogram(
      const std::vector<uint8_t>&, std::string*);

  // Chooses the boundary positions for one dimension, returning the N-1
  // inner boundaries (ascending). `sorted_coords` holds the training
  // coordinates of that dimension in ascending order (may be empty).
  virtual std::vector<double> ChooseBoundaries(
      int dim, std::span<const double> sorted_coords) const = 0;

  // Bytes charged per dimension for boundary storage (0 for equi-width,
  // whose boundaries are implicit).
  virtual int64_t BoundaryBytesPerDim(int intervals) const = 0;

  // Largest per-dimension interval count whose grid fits the budget.
  int MaxIntervalsForBudget() const;

 private:
  int64_t BucketIndexOf(const Point& point) const;
  int IntervalOf(int dim, double coordinate) const;

  Box space_;
  int64_t memory_limit_bytes_;
  int intervals_per_dim_ = 1;
  // boundaries_[dim] holds the N-1 inner boundaries of that dimension.
  std::vector<std::vector<double>> boundaries_;
  std::vector<double> bucket_avgs_;
  std::vector<int64_t> bucket_counts_;
  double global_avg_ = 0.0;
  int64_t charged_bytes_ = 0;
  bool trained_ = false;
};

// SH-W: equal-length intervals in every dimension.
class EquiWidthHistogram : public StaticHistogram {
 public:
  EquiWidthHistogram(const Box& space, int64_t memory_limit_bytes);

  std::string_view name() const override { return "SH-W"; }

 protected:
  std::vector<double> ChooseBoundaries(
      int dim, std::span<const double> sorted_coords) const override;
  int64_t BoundaryBytesPerDim(int intervals) const override {
    (void)intervals;
    return 0;  // Implicit from the space extent.
  }
};

// SH-H: per-dimension equi-height (quantile) intervals, so each interval of
// a dimension holds the same number of training points.
class EquiHeightHistogram : public StaticHistogram {
 public:
  EquiHeightHistogram(const Box& space, int64_t memory_limit_bytes);

  std::string_view name() const override { return "SH-H"; }

 protected:
  std::vector<double> ChooseBoundaries(
      int dim, std::span<const double> sorted_coords) const override;
  int64_t BoundaryBytesPerDim(int intervals) const override {
    return 8 * static_cast<int64_t>(intervals - 1);
  }
};

// SH-V: influence-weighted histogram — the storage-efficiency improvement
// the SH paper sketches but leaves open ("reducing the number of intervals
// assigned to variables that have low influence on the cost. However, they
// do not specify how to find the amount of influence a variable has",
// Section 2.1 of the MLQ paper).
//
// We quantify influence as explained variance: for each dimension,
// partition the training data into kProbeIntervals equi-width slabs and
// measure the variance of the slab means (how much of the cost's variance
// that dimension's position explains). Interval counts are then assigned
// greedily — repeatedly doubling the intervals of the highest-influence
// dimension while the grid still fits the budget — so an irrelevant
// variable gets 1 interval and frees its share of the grid for the
// variables that matter. Buckets use equi-width boundaries within each
// dimension.
class InfluenceWeightedHistogram : public CostModel {
 public:
  static constexpr int kProbeIntervals = 8;

  InfluenceWeightedHistogram(const Box& space, int64_t memory_limit_bytes);

  void Train(std::span<const Point> points, std::span<const double> costs);

  std::string_view name() const override { return "SH-V"; }
  double Predict(const Point& point) const override;
  // Same stats semantics as StaticHistogram::PredictStats.
  CostEstimate PredictStats(const Point& point) const override;
  void Observe(const Point& point, double actual_cost) override {
    (void)point;
    (void)actual_cost;  // Static.
  }
  int64_t MemoryBytes() const override { return charged_bytes_; }
  bool IsSelfTuning() const override { return false; }

  bool trained() const { return trained_; }
  // Interval count chosen for each dimension.
  const std::vector<int>& intervals() const { return intervals_; }
  // Influence score (explained variance) measured for each dimension.
  const std::vector<double>& influence() const { return influence_; }
  int64_t num_buckets() const { return static_cast<int64_t>(bucket_avgs_.size()); }
  const Box& space() const { return space_; }

 private:
  int64_t BucketIndexOf(const Point& point) const;

  Box space_;
  int64_t memory_limit_bytes_;
  std::vector<int> intervals_;
  std::vector<double> influence_;
  std::vector<double> bucket_avgs_;
  std::vector<int64_t> bucket_counts_;
  double global_avg_ = 0.0;
  int64_t charged_bytes_ = 0;
  bool trained_ = false;
};

}  // namespace mlq

#endif  // MLQ_MODEL_STATIC_HISTOGRAM_H_
