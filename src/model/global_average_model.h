#ifndef MLQ_MODEL_GLOBAL_AVERAGE_MODEL_H_
#define MLQ_MODEL_GLOBAL_AVERAGE_MODEL_H_

#include "common/stats.h"
#include "model/cost_model.h"

namespace mlq {

// Degenerate self-tuning model that predicts the running average of every
// observation it has seen. Equivalent to a one-node MLQ; serves as the
// sanity floor in tests and benchmarks (anything structured must beat it on
// non-constant cost surfaces).
class GlobalAverageModel : public CostModel {
 public:
  std::string_view name() const override { return "GLOBAL-AVG"; }

  double Predict(const Point& point) const override {
    (void)point;
    return summary_.Avg();
  }

  // Native stats from the single summary triple: the model IS a one-node
  // MLQ, so its global stddev/count are the honest uncertainty report.
  CostEstimate PredictStats(const Point& point) const override {
    (void)point;
    return CostEstimate{summary_.Avg(), summary_.Stddev(), summary_.count,
                        summary_.count > 0};
  }

  void Observe(const Point& point, double actual_cost) override {
    (void)point;
    summary_.Add(actual_cost);
    ++breakdown_.insertions;
  }

  int64_t MemoryBytes() const override { return 24; }  // One summary triple.
  bool IsSelfTuning() const override { return true; }
  ModelUpdateBreakdown update_breakdown() const override { return breakdown_; }

 private:
  SummaryTriple summary_;
  ModelUpdateBreakdown breakdown_;
};

}  // namespace mlq

#endif  // MLQ_MODEL_GLOBAL_AVERAGE_MODEL_H_
