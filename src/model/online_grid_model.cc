#include "model/online_grid_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/timer.h"

namespace mlq {

OnlineGridModel::OnlineGridModel(const Box& space, int64_t memory_limit_bytes)
    : space_(space) {
  assert(space.dims() >= 1 && space.dims() <= kMaxDims);
  // A self-tuning bucket needs its running sum and count (12 bytes charged:
  // 8 + 4), so the grid is a little coarser than a trained-once SH-W at the
  // same budget — the honest price of updatability.
  const int d = space.dims();
  int best = 1;
  for (int n = 1;; ++n) {
    const double buckets = std::pow(static_cast<double>(n), d);
    if (buckets > 1e12 || static_cast<int64_t>(buckets) * 12 > memory_limit_bytes) {
      break;
    }
    best = n;
  }
  intervals_per_dim_ = best;
  int64_t buckets = 1;
  for (int dim = 0; dim < d; ++dim) buckets *= intervals_per_dim_;
  buckets_.assign(static_cast<size_t>(buckets), SummaryTriple{});
  charged_bytes_ = buckets * 12;
}

int64_t OnlineGridModel::BucketIndexOf(const Point& point) const {
  const int d = space_.dims();
  int64_t index = 0;
  for (int dim = 0; dim < d; ++dim) {
    const double lo = space_.lo()[dim];
    const double width = space_.Extent(dim) / intervals_per_dim_;
    const double c = std::clamp(point[dim], lo, space_.hi()[dim]);
    int interval = width > 0.0 ? static_cast<int>((c - lo) / width) : 0;
    interval = std::clamp(interval, 0, intervals_per_dim_ - 1);
    index = index * intervals_per_dim_ + interval;
  }
  return index;
}

double OnlineGridModel::Predict(const Point& point) const {
  const SummaryTriple& bucket = buckets_[static_cast<size_t>(BucketIndexOf(point))];
  if (bucket.Empty()) return global_.Avg();
  return bucket.Avg();
}

CostEstimate OnlineGridModel::PredictStats(const Point& point) const {
  const SummaryTriple& bucket =
      buckets_[static_cast<size_t>(BucketIndexOf(point))];
  if (bucket.Empty()) {
    // Global fallback, like Predict: report the global spread but flag the
    // estimate as locally unsupported.
    return CostEstimate{global_.Avg(), global_.Stddev(), 0, false};
  }
  return CostEstimate{bucket.Avg(), bucket.Stddev(), bucket.count, true};
}

void OnlineGridModel::Observe(const Point& point, double actual_cost) {
  if (!std::isfinite(actual_cost)) return;
  WallTimer timer;
  buckets_[static_cast<size_t>(BucketIndexOf(point))].Add(actual_cost);
  global_.Add(actual_cost);
  ++breakdown_.insertions;
  breakdown_.insert_seconds += timer.ElapsedSeconds();
}

}  // namespace mlq
