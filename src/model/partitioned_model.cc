#include "model/partitioned_model.h"

#include <cassert>
#include <utility>

#include "model/mlq_model.h"

namespace mlq {

PartitionedCostModel::ModelFactory MakeSharedArenaMlqFactory(
    const Box& space, const MlqConfig& base_config,
    std::shared_ptr<SharedNodeArena> arena) {
  return [space, base_config,
          arena = std::move(arena)](int64_t budget_bytes) {
    MlqConfig config = base_config;
    config.memory_limit_bytes = budget_bytes;
    return std::make_unique<MlqModel>(space, config, arena);
  };
}

PartitionedCostModel::PartitionedCostModel(ModelFactory factory,
                                           int max_partitions,
                                           int64_t total_budget_bytes)
    : factory_(std::move(factory)), max_partitions_(max_partitions) {
  assert(max_partitions >= 0);
  assert(total_budget_bytes > 0);
  partition_budget_ = total_budget_bytes / (max_partitions_ + 1);
  assert(partition_budget_ > 0);
}

const CostModel* PartitionedCostModel::ModelForKey(int64_t key) const {
  for (const Partition& p : partitions_) {
    if (p.key == key) return p.model.get();
  }
  return overflow_.get();
}

CostModel* PartitionedCostModel::FindOrCreate(int64_t key) {
  for (Partition& p : partitions_) {
    if (p.key == key) return p.model.get();
  }
  if (static_cast<int>(partitions_.size()) < max_partitions_) {
    partitions_.push_back(Partition{key, factory_(partition_budget_)});
    return partitions_.back().model.get();
  }
  if (overflow_ == nullptr) overflow_ = factory_(partition_budget_);
  return overflow_.get();
}

double PartitionedCostModel::Predict(int64_t key, const Point& point) const {
  const CostModel* model = ModelForKey(key);
  return model != nullptr ? model->Predict(point) : 0.0;
}

void PartitionedCostModel::Observe(int64_t key, const Point& point,
                                   double actual_cost) {
  FindOrCreate(key)->Observe(point, actual_cost);
}

int64_t PartitionedCostModel::MemoryBytes() const {
  int64_t total = 0;
  for (const Partition& p : partitions_) total += p.model->MemoryBytes();
  if (overflow_ != nullptr) total += overflow_->MemoryBytes();
  return total;
}

}  // namespace mlq
