#ifndef MLQ_MODEL_SHARDED_MODEL_H_
#define MLQ_MODEL_SHARDED_MODEL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/feedback_queue.h"
#include "model/cost_model.h"
#include "model/mlq_model.h"

namespace mlq {

// Tuning knobs for ShardedCostModel. Defaults suit a serving process with a
// handful of planner threads; see docs/concurrency.md for guidance.
struct ShardedModelOptions {
  // Number of independently locked MLQ shards. Each shard owns a tree over
  // the full model space under memory_limit_bytes / num_shards.
  int num_shards = 4;

  // When set, every shard tree allocates from this arena instead of a
  // private one (catalog-shared physical slabs; logical budgets unchanged).
  std::shared_ptr<SharedNodeArena> arena;

  // Bounded per-shard feedback queue capacity (drop-oldest on overflow).
  size_t queue_capacity = 1024;

  // Observe opportunistically try-locks the shard and drains once this
  // many observations are pending, bounding staleness without ever
  // blocking. 0 disables opportunistic draining (queue drains only on
  // Predict / Flush / the background drainer).
  size_t drain_batch = 512;

  // When set, Predict applies the shard's pending observations before
  // answering, so a single-threaded caller reads its own writes exactly
  // like the bare model (required for the differential tests). Costs the
  // prediction path the inserts it absorbs; high-throughput servers that
  // prefer strictly cheap predictions turn this off and rely on the
  // background drainer for freshness.
  bool drain_on_predict = true;

  // When set, a background thread flushes all shards every
  // drain_interval_micros. Off by default so tests stay deterministic.
  bool background_drain = false;
  int64_t drain_interval_micros = 500;

  // Invoked after feedback is applied on the Observe/ObserveBatch drain
  // path, with NO shard lock held — a feedback batch boundary. The catalog
  // points this at its maintenance scheduler's Tick() so the serving loop
  // drives arena maintenance autonomously. Deliberately NOT invoked on the
  // Predict path (prediction latency must never absorb an epoch) or from
  // Flush() (maintenance epochs themselves flush, and must not recurse).
  std::function<void()> post_drain_hook;
};

// Aggregated (or per-shard) serving counters.
struct ShardedModelStats {
  int64_t predictions = 0;             // Predict calls served.
  int64_t observations_submitted = 0;  // Observe calls accepted.
  int64_t observations_dropped = 0;    // Evicted by queue overflow.
  int64_t observations_applied = 0;    // Inserted into a shard tree.
  int64_t compressions = 0;            // Tree compressions across shards.
  int64_t pending = 0;                 // Currently queued, not yet applied.
  // Invariant (after a final Flush, when pending == 0):
  //   observations_submitted == observations_applied + observations_dropped.
};

// A sharded, concurrently servable cost model (the serving-layer answer to
// ConcurrentCostModel's single global mutex).
//
// The model-variable space is striped across `num_shards` independent
// memory-limited quadtrees, each covering the FULL model space under
// budget/num_shards. A query point deterministically maps to one shard by
// hashing its quantized coordinates (the leaf-resolution grid cell at
// 2^max_depth cells per dimension), so all points in the same finest-grain
// block — and therefore all observations a prediction could draw on — land
// in the same shard. Predictions lock only that shard; predictions for
// different shards proceed in parallel.
//
// Observe never takes a shard's model lock: it enqueues into the shard's
// bounded drop-oldest feedback queue (see BoundedFeedbackQueue) and
// returns. Queued observations are applied to the tree, in FIFO order, by
// whichever of these runs first: a Predict on the same shard (when
// drain_on_predict is set), an opportunistic try-lock drain once
// drain_batch observations are pending, an explicit Flush(), or the
// optional background drain thread.
//
// With num_shards == 1 and a single caller, the sequence of tree inserts is
// identical to feeding the bare MlqModel directly, so predictions are
// bit-identical (the differential tests rely on this). With more shards the
// budget split and per-shard tree shapes differ from the single tree, so
// accuracy must be (and is) validated empirically, not assumed.
class ShardedCostModel : public CostModel {
 public:
  ShardedCostModel(const Box& space, const MlqConfig& config,
                   const ShardedModelOptions& options = {});
  ~ShardedCostModel() override;

  ShardedCostModel(const ShardedCostModel&) = delete;
  ShardedCostModel& operator=(const ShardedCostModel&) = delete;

  std::string_view name() const override { return name_; }
  double Predict(const Point& point) const override;
  Prediction PredictDetailed(const Point& point) const override;
  // Buckets the batch by shard, then serves each shard's points under one
  // lock acquisition (and one drain, when drain_on_predict is set) via the
  // tree's batched descent. Results land at their original positions, so
  // the output is element-wise identical to a PredictDetailed loop.
  void PredictBatch(std::span<const Point> points,
                    std::span<Prediction> out) const override;
  // Stats currency over the same shard-bucketed path: per-point stddev and
  // count come from whichever shard tree served the point, scattered back
  // to the original positions exactly like PredictBatch.
  CostEstimate PredictStats(const Point& point) const override;
  void PredictStatsBatch(std::span<const Point> points,
                         std::span<CostEstimate> out) const override;
  void Observe(const Point& point, double actual_cost) override;
  // Partitions the batch by shard hash (preserving each shard's relative
  // order), then per shard: if the shard's model lock is free, drains the
  // queued backlog and applies the whole run directly via the tree's
  // batched insert — skipping the queue round-trip entirely; if the shard
  // is busy, enqueues the run with ONE queue-lock acquisition under the
  // scalar path's drop-oldest overflow semantics. A single-threaded caller
  // always takes the direct path, so its per-shard insert sequence matches
  // a scalar Observe loop exactly; see docs/concurrency.md for how burst
  // enqueueing interacts with the bounded queue.
  void ObserveBatch(std::span<const Observation> batch) override;
  int64_t MemoryBytes() const override;
  int64_t NodeCount() const override;
  bool IsSelfTuning() const override { return true; }
  ModelUpdateBreakdown update_breakdown() const override;

  // Advances every shard tree's decay clock (one shard lock at a time, in
  // shard order; concurrent predicts/observes on other shards proceed).
  void AdvanceDecayEpoch(int64_t epochs) override;

  // Re-targets the TOTAL budget: each shard tree is resized to
  // limit_bytes / num_shards (under the same minimum-per-shard floor the
  // constructor applies), one shard lock at a time, so serving on other
  // shards proceeds during the resize.
  bool SetByteBudget(int64_t limit_bytes) override;

  // Takes every shard's model mutex (in shard order). Queued feedback may
  // remain pending — queues hold Points, not node indices, so arena
  // compaction does not invalidate them.
  std::vector<std::unique_lock<std::mutex>> LockForMaintenance() override;

  // Applies every queued observation to its shard tree (blocking: takes
  // each shard's model lock in turn). After Flush returns — with no
  // concurrent producers — pending == 0 and the stats invariant holds.
  void Flush() override;

  // Deterministic shard index of `point` (exposed for tests and tools).
  int ShardOf(const Point& point) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardedModelOptions& options() const { return options_; }

  // The shard's underlying model, for introspection (CheckInvariants,
  // tree stats). NOT synchronized: callers must quiesce writers first
  // (e.g. join workers, then Flush()).
  const MlqModel& shard_model(int shard) const {
    return shards_[static_cast<size_t>(shard)]->model;
  }

  // Serving counters for one shard / aggregated over all shards.
  ShardedModelStats shard_stats(int shard) const;
  ShardedModelStats stats() const;

  // Sum of all shard trees' operation counters, shaped like a single
  // tree's QuadtreeCounters so existing reporting can consume it.
  QuadtreeCounters AggregateTreeCounters() const;

 private:
  struct Shard {
    Shard(const Box& space, const MlqConfig& config, size_t queue_capacity,
          std::shared_ptr<SharedNodeArena> arena)
        : model(space, config, std::move(arena)), queue(queue_capacity) {}

    // Lock order: model_mutex before queue's internal mutex (Predict and
    // drains hold model_mutex while popping); Observe takes only the
    // queue's mutex.
    mutable std::mutex model_mutex;
    MlqModel model;
    BoundedFeedbackQueue<Observation> queue;
    // Guarded by model_mutex:
    int64_t predictions = 0;
    int64_t applied = 0;
    // Observations ObserveBatch applied directly, bypassing the queue
    // (counted into observations_submitted alongside queue.pushed()).
    int64_t direct_submitted = 0;
    // Reused drain scratch buffer, guarded by model_mutex.
    std::vector<Observation> drain_buffer;
  };

  // Applies all pending queued observations of `shard` to its tree.
  // Caller holds shard.model_mutex.
  void DrainLocked(Shard& shard) const;

  ShardedModelOptions options_;
  Box space_;
  // Quantization grid: cells per dimension (2^max_depth, clamped).
  int64_t cells_per_dim_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::string name_;

  // Background drainer.
  std::thread drainer_;
  mutable std::mutex drainer_mutex_;
  std::condition_variable drainer_cv_;
  bool stop_drainer_ = false;
};

}  // namespace mlq

#endif  // MLQ_MODEL_SHARDED_MODEL_H_
