#ifndef MLQ_OBS_TRACE_RING_H_
#define MLQ_OBS_TRACE_RING_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace mlq {
namespace obs {

// Typed events recorded by the serving stack. The two double payload slots
// carry per-type arguments (named in ExportChromeTrace and
// docs/observability.md).
enum class TraceEventType : uint8_t {
  kPredict = 0,    // a = predicted value, b = node depth
  kInsert,         // a = observed value, b = insertion path length
  kPartition,      // a = child depth,    b = child index
  kCompress,       // a = bytes freed,    b = th_SSE after the pass
  kExpand,         // a = new max_depth
  kFeedbackDrop,   // a = pending count (post-drop)
  kFeedbackDrain,  // a = observations applied
  kPlan,           // a = #predicates,    b = expected cost/row (us)
  kPlanAudit,      // a = max cost drift, b = max selectivity drift
  kQueryExec,      // a = rows in,        b = actual cost (us)
};

std::string_view TraceEventTypeName(TraceEventType type);

// A snapshot copy of one recorded event (plain data, no atomics).
struct TraceEvent {
  TraceEventType type = TraceEventType::kPredict;
  int tid = 0;
  int64_t ts_ns = 0;   // Start timestamp, obs::NowNs timebase.
  int64_t dur_ns = 0;  // 0 for instant events.
  double a = 0.0;
  double b = 0.0;
};

// Fixed-capacity lock-free ring buffer of trace events.
//
// Writers claim a slot with one relaxed fetch_add and publish it by storing
// the ticket into the slot's sequence word with release order; when the
// ring is full the oldest slot is silently overwritten (overwritten() keeps
// count — drops are never silent in aggregate). Readers (Snapshot) validate
// each slot's sequence before and after copying the payload and discard
// slots that changed under them, so a snapshot taken while writers are
// running yields only whole events. All slot fields are atomics: concurrent
// Record/Snapshot is race-free by construction (TSan-clean), at the cost of
// a vanishingly rare garbled event if a writer wraps the entire ring inside
// another writer's claim/publish window.
class TraceRing {
 public:
  // Capacity is rounded up to a power of two; default 64Ki events (~3 MB).
  explicit TraceRing(size_t capacity = 1 << 16);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(TraceEventType type, int64_t ts_ns, int64_t dur_ns,
              double a = 0.0, double b = 0.0);

  // Copies the currently resident events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  size_t capacity() const { return mask_ + 1; }
  int64_t total_recorded() const {
    return static_cast<int64_t>(next_.load(std::memory_order_relaxed));
  }
  // Events lost to wrap-around (total_recorded - capacity, floored at 0).
  int64_t overwritten() const;

  // Empties the ring. Not safe against concurrent writers; call quiesced
  // (tests, tool teardown between phases).
  void Clear();

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // ticket + 1 once published; 0 = empty.
    std::atomic<uint8_t> type{0};
    std::atomic<int32_t> tid{0};
    std::atomic<int64_t> ts_ns{0};
    std::atomic<int64_t> dur_ns{0};
    std::atomic<double> a{0.0};
    std::atomic<double> b{0.0};
  };

  uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

// The process-wide ring the MLQ_TRACE_EVENT hooks write into.
TraceRing& GlobalTraceRing();

// Runtime switch for event recording, independent of the metrics toggle
// (metrics are cheap enough for production; tracing costs a ring write per
// event and is usually enabled only around an investigation).
extern std::atomic<bool> g_trace_enabled;
inline bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}
void SetTraceEnabled(bool on);

// Writes `events` as Chrome trace_event JSON ("chrome://tracing" /
// https://ui.perfetto.dev loadable): complete ("X") events for spans,
// instant ("i") events for zero-duration ones, timestamps in microseconds.
void ExportChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events);

}  // namespace obs
}  // namespace mlq

// Trace hook used by instrumentation sites. Compiles to nothing when
// MLQ_OBS_DISABLE_TRACING is defined (cmake -DMLQ_DISABLE_TRACING=ON), for
// deployments that want even the trace branch out of the binary; otherwise
// it is one relaxed load when tracing is off.
#ifndef MLQ_OBS_DISABLE_TRACING
#define MLQ_TRACE_EVENT(type, ts_ns, dur_ns, a, b)                          \
  do {                                                                      \
    if (mlq::obs::TraceEnabled()) {                                         \
      mlq::obs::GlobalTraceRing().Record((type), (ts_ns), (dur_ns), (a),    \
                                         (b));                              \
    }                                                                       \
  } while (0)
#else
#define MLQ_TRACE_EVENT(type, ts_ns, dur_ns, a, b) \
  do {                                             \
  } while (0)
#endif

#endif  // MLQ_OBS_TRACE_RING_H_
