#ifndef MLQ_OBS_EVENT_LOG_H_
#define MLQ_OBS_EVENT_LOG_H_

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace mlq {
namespace obs {

// Macro-event kinds recorded by the serving stack. These are the rare,
// operator-facing state changes (a drift firing, a maintenance epoch) —
// the complement of the trace ring's high-frequency micro-spans. Payload
// slot meanings per kind are listed next to each enumerator and in
// docs/observability.md.
enum class EventKind : uint8_t {
  // a = DriftKind (1 gradual, 2 abrupt), b = fast/slow error ratio at the
  // firing, c = detector observations so far. label = model (UDF) name.
  kDriftFired = 0,
  // a = 1 incremental / 0 full, b = total pause us, c = bytes reclaimed.
  // label = "incremental" | "full".
  kMaintenanceEpoch,
  // One SSEG compression pass on some tree. a = bytes freed, b = th_SSE
  // after the pass, c = nodes remaining.
  kCompressionEpoch,
  // a = decay epochs advanced (scheduler clock tick or drift burst).
  kDecayEpochs,
  // A model entered the catalog. a = per-model budget bytes. label = UDF.
  kModelLoad,
  // Queued feedback flushed catalog-wide. a = models flushed.
  kModelFlush,
  // One arena compaction pass (stop-the-world Compact or a converged
  // incremental layout). a = blocks moved, b = bytes reclaimed.
  kArenaCompaction,
  // One catalog-governor rebalance. a = bytes granted to growing entries,
  // b = bytes reclaimed from shrinking entries, c = entries re-budgeted.
  kGovernorDecision,
  // A whole model left the resident catalog (snapshot flushed to the
  // governor's store). a = serialized snapshot bytes, b = entry traffic at
  // eviction. label = UDF name.
  kModelEvict,
  // An evicted model was restored from its snapshot on first re-use.
  // a = serialized snapshot bytes. label = UDF name.
  kModelReload,
};

std::string_view EventKindName(EventKind kind);

// One journal entry. `label` is a short inline identifier (model name,
// epoch mode); fixed-size so entries stay POD and the journal's memory is
// strictly capacity * sizeof(StructuredEvent).
struct StructuredEvent {
  static constexpr size_t kLabelCapacity = 24;

  EventKind kind = EventKind::kDriftFired;
  int tid = 0;
  int64_t ts_ns = 0;  // obs::NowNs timebase, shared with the trace ring.
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  char label[kLabelCapacity] = {};

  std::string_view label_view() const;
};

// Fixed-capacity, thread-safe structured event journal.
//
// Append takes one mutex (macro events are orders of magnitude rarer than
// the trace ring's spans, so a mutex is both simple and uncontended); when
// the journal is full the OLDEST entry is overwritten, so a snapshot
// always holds the newest `capacity` events. dropped() counts what
// wrap-around discarded — losses are never silent in aggregate.
//
// Every Append is gated on obs::Enabled() by the recording sites (and
// re-checked here), so a disabled build pays only the usual relaxed-load
// guard.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 8192);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Records one event now (ts_ns/tid filled in here). No-op when
  // obs::Enabled() is false.
  void Append(EventKind kind, std::string_view label, double a = 0.0,
              double b = 0.0, double c = 0.0);

  // Copies the resident events, oldest first.
  std::vector<StructuredEvent> Snapshot() const;

  // Snapshot and empty the journal in one critical section, so an exporter
  // draining per-interval events cannot lose entries appended between a
  // separate snapshot and clear.
  std::vector<StructuredEvent> Drain();

  // Non-destructive incremental read: returns the events appended since
  // *cursor (an append total from a previous call; start from 0), oldest
  // first, limited to what is still resident — entries already lost to
  // wrap-around are skipped, never re-delivered. Updates *cursor to the
  // current append total in the same critical section, so concurrent
  // appends land in exactly one interval. This is how the exporter tails
  // the journal without consuming it.
  std::vector<StructuredEvent> SnapshotSince(int64_t* cursor) const;

  size_t capacity() const { return capacity_; }
  int64_t total_appended() const;
  // Events lost to capacity wrap-around since construction (or last Clear).
  int64_t dropped() const;

  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  // Ring storage, all guarded by mutex_: events_[(start_ + i) % capacity_]
  // for i in [0, size_).
  std::vector<StructuredEvent> events_;
  size_t start_ = 0;
  size_t size_ = 0;
  int64_t total_ = 0;
  int64_t dropped_ = 0;
};

// The process-wide journal the engine/quadtree hooks write into.
EventLog& GlobalEventLog();

// Writes `events` as JSONL: one {"ts_ns", "kind", "tid", "label", "a",
// "b", "c"} object per line, oldest first.
void ExportEventsJsonl(std::ostream& os,
                       const std::vector<StructuredEvent>& events);

}  // namespace obs
}  // namespace mlq

#endif  // MLQ_OBS_EVENT_LOG_H_
