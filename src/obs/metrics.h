#ifndef MLQ_OBS_METRICS_H_
#define MLQ_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace mlq {
namespace obs {

// Master runtime switch for the whole observability layer. OFF by default,
// so the library behaves exactly like the uninstrumented build: every hook
// is a single relaxed atomic load plus a predicted-not-taken branch
// (bench/obs_overhead measures this disabled path at well under 2% of the
// hot-loop cost). Tools, benches and tests flip it on explicitly.
extern std::atomic<bool> g_metrics_enabled;

inline bool Enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool on);

// Monotonic nanoseconds since the first call in this process (steady
// clock); the shared timebase for latency histograms and trace events.
int64_t NowNs();

// Small dense id for the calling thread (0, 1, 2, ... in first-use order);
// used as the `tid` of trace events so Chrome's trace viewer groups rows
// sensibly.
int CurrentThreadId();

// --- Instruments -----------------------------------------------------------
// All instruments are thread-safe via relaxed atomics: increments from any
// number of threads are exact; readers see values that are individually
// consistent (snapshots across instruments are not atomic, which is fine
// for monitoring).

class Counter {
 public:
  void Inc(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  // Reads and zeroes in one atomic RMW: an Inc racing this lands either
  // before (read out) or after (kept for the next drain) — never lost.
  int64_t Drain() { return value_.exchange(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log2-bucketed latency histogram over nanoseconds: bucket 0 holds
// [0, 2) ns and bucket i >= 1 holds [2^i, 2^(i+1)) ns, so 48 buckets cover
// everything up to ~78 hours. Record is two relaxed fetch_adds plus a
// bit_width; Quantile reads a snapshot of the buckets and interpolates
// linearly inside the chosen bucket.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 48;

  void Record(int64_t ns);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  int64_t max_ns() const { return max_ns_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }

  // Inclusive upper bound of bucket `i` (the Prometheus `le` label).
  static int64_t BucketUpperNs(int i);

  // Estimated q-quantile in nanoseconds (q in [0, 1]); 0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  friend class MetricsRegistry;  // Drains buckets for SnapshotAndReset.

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_ns_{0};
  std::atomic<int64_t> max_ns_{0};
};

// --- Snapshots -------------------------------------------------------------

// Plain-data copy of one histogram's state; quantiles computed over the
// copied buckets with the same interpolation LatencyHistogram::Quantile
// uses, so interval quantiles (deltas between snapshots) cost nothing
// extra.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum_ns = 0;
  int64_t max_ns = 0;
  std::array<uint64_t, LatencyHistogram::kNumBuckets> buckets{};

  // q-quantile over the snapshotted buckets (0 when empty).
  double Quantile(double q) const;
  // this - base, element-wise (count/sum/buckets; max is kept from *this,
  // an interval upper bound). Negative components clamp to zero, so a
  // reset landing between the two snapshots cannot produce nonsense.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& base) const;
  // Folds `other` into this snapshot (the exporter's cumulative view).
  void Accumulate(const HistogramSnapshot& other);
};

// One coherent copy of every registered instrument, taken under the
// registry mutex so no instrument can be created or reset halfway through.
struct MetricsSnapshot {
  int64_t ts_ns = 0;  // obs::NowNs() at capture.
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

// --- Registry --------------------------------------------------------------

// Named metric registry. Get* finds or creates; returned references stay
// valid for the registry's lifetime (instruments are heap-allocated and
// never removed), so hot paths resolve a metric once and keep the
// reference. Registration takes a mutex; the instruments themselves do not.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  LatencyHistogram& GetHistogram(const std::string& name,
                                 const std::string& help = "");

  // Prometheus-style text exposition (counters, gauges, histograms with
  // cumulative le-buckets in nanoseconds).
  void RenderPrometheus(std::ostream& os) const;

  // One JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {name: {count, sum_ns, max_ns, p50_ns, p90_ns, p99_ns}}}.
  void RenderJson(std::ostream& os) const;

  // Human-readable latency summary (one line per non-empty histogram with
  // count / p50 / p90 / p99 / p999 / max), for terminal output.
  void RenderLatencySummary(std::ostream& os) const;

  // Coherent read of every instrument (non-destructive).
  MetricsSnapshot Snapshot() const;

  // Reads AND zeroes every counter and histogram in one critical section
  // (gauges are copied, not reset — they are levels, not totals). Holds
  // the same mutex as ResetAll, so a concurrent ResetAll lands entirely
  // before or entirely after the scrape and interval deltas can never go
  // negative; per-instrument drains are atomic RMWs, so increments racing
  // the scrape are either in this snapshot or in the next, never lost.
  // This is the TelemetryExporter's scrape primitive.
  MetricsSnapshot SnapshotAndReset();

  // Zeroes every registered instrument (names stay registered).
  void ResetAll();

  // Help text registered for `name` ("" when none). For exporters that
  // re-render # HELP lines from snapshots.
  std::string Help(const std::string& name) const;

 private:
  MetricsRegistry() = default;

  template <typename T>
  T& FindOrCreate(std::map<std::string, std::unique_ptr<T>>& family,
                  const std::string& name, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::map<std::string, std::string> help_;
};

// --- Well-known metrics ----------------------------------------------------

// The stack's core instruments, resolved once against the global registry
// so instrumentation sites pay a function-local-static check instead of a
// name lookup. Names are the stable public metric schema
// (docs/observability.md).
struct CoreMetrics {
  Counter& predicts;              // mlq_predicts_total
  Counter& predict_batches;       // mlq_predict_batches_total
  Counter& inserts;               // mlq_inserts_total
  Counter& partitions;            // mlq_partitions_total (nodes materialized)
  Counter& compressions;          // mlq_compressions_total
  Counter& compress_bytes_freed;  // mlq_compress_bytes_freed_total
  Counter& expansions;            // mlq_expansions_total (root doublings)
  Counter& feedback_enqueued;     // mlq_feedback_enqueued_total
  Counter& feedback_applied;      // mlq_feedback_applied_total
  Counter& feedback_dropped;      // mlq_feedback_dropped_total
  Counter& catalog_feedback;      // mlq_catalog_feedback_total
  Counter& plans;                 // mlq_plans_total
  Counter& plan_audits;           // mlq_plan_audits_total
  Counter& query_execs;           // mlq_query_execs_total
  Counter& observe_batches;       // mlq_observe_batches_total
  Counter& arena_compactions;     // mlq_arena_compactions_total
  Counter& arena_compact_bytes_reclaimed;  // mlq_arena_compact_bytes_reclaimed_total
  Counter& maintenance_epochs;    // mlq_maintenance_epochs_total
  Counter& maintenance_steps;     // mlq_maintenance_steps_total
  Counter& drift_events;          // mlq_drift_events_total
  Counter& decay_epochs;          // mlq_decay_epochs_total
  Counter& governor_rebalances;   // mlq_governor_rebalances_total
  Counter& governor_bytes_granted;    // mlq_governor_bytes_granted_total
  Counter& governor_bytes_reclaimed;  // mlq_governor_bytes_reclaimed_total
  Counter& governor_evictions;    // mlq_governor_evictions_total
  Counter& governor_reloads;      // mlq_governor_reloads_total
  // Plans costed with a non-zero risk knob, and how many of those chose an
  // order different from the classical rank (the variance signal actually
  // changed a decision).
  Counter& risk_plans;            // mlq_risk_plans_total
  Counter& risk_reorders;         // mlq_plan_risk_reorders_total

  LatencyHistogram& predict_ns;    // mlq_predict_latency_ns
  LatencyHistogram& predict_batch_ns;  // mlq_predict_batch_latency_ns
  LatencyHistogram& insert_ns;     // mlq_insert_latency_ns
  LatencyHistogram& compress_ns;   // mlq_compress_latency_ns
  LatencyHistogram& plan_ns;       // mlq_plan_latency_ns
  LatencyHistogram& exec_ns;       // mlq_query_exec_latency_ns
  LatencyHistogram& lock_wait_ns;  // mlq_model_lock_wait_ns
  LatencyHistogram& observe_batch_ns;  // mlq_observe_batch_latency_ns
  // Batch SIZES, not latencies: the log2 bucketing doubles as a cheap
  // power-of-two size histogram.
  LatencyHistogram& observe_batch_points;  // mlq_observe_batch_points
  LatencyHistogram& arena_compact_ns;  // mlq_arena_compact_latency_ns
  // One maintenance quiesce window (locks held + compaction work) — the
  // serving pause an epoch or an incremental step imposes.
  LatencyHistogram& maintenance_pause_ns;  // mlq_maintenance_pause_ns
  // Per-prediction stddev of catalog cost estimates, recorded in
  // MILLI-units (log2 buckets) so sub-unit uncertainty stays visible: the
  // uncertainty stream the risk-aware planner consumes.
  LatencyHistogram& predict_stddev;  // mlq_predict_stddev

  Gauge& max_cost_drift;         // mlq_model_max_cost_drift
  Gauge& max_selectivity_drift;  // mlq_model_max_selectivity_drift
  Gauge& sse_threshold;          // mlq_compress_sse_threshold
  // Reclaimable fraction of the worst catalog arena (free / total slots).
  Gauge& arena_fragmentation;    // mlq_arena_fragmentation
  // Fast/slow windowed-error ratio of the stalest model the drift detector
  // tracks (1 = calibrated; >> 1 = the model lags the workload).
  Gauge& model_staleness;        // mlq_model_staleness
  // Catalog entries currently resident (not evicted to the snapshot store).
  Gauge& governor_resident_models;  // mlq_governor_resident_models
  // Sum of per-entry byte budgets after the last governor rebalance.
  Gauge& governor_allocated_bytes;  // mlq_governor_allocated_bytes
};

CoreMetrics& Core();

}  // namespace obs
}  // namespace mlq

#endif  // MLQ_OBS_METRICS_H_
