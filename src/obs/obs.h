#ifndef MLQ_OBS_OBS_H_
#define MLQ_OBS_OBS_H_

// Umbrella header for the observability layer: runtime-toggled metrics
// (obs/metrics.h), event tracing (obs/trace_ring.h), the structured
// macro-event journal (obs/event_log.h), and the continuous telemetry
// exporter (obs/telemetry.h). Instrumentation sites either hand-roll the
// guard (hot paths that also bump counters) or use ScopedLatency for the
// common span shape.
//
// The contract every hook honours: with obs::Enabled() false the cost is
// one relaxed atomic load and a branch — bench/obs_overhead holds this
// under 2% of the hot-loop budget — and with MLQ_OBS_DISABLE_TRACING the
// trace hooks vanish from the binary entirely.

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace_ring.h"

namespace mlq {
namespace obs {

// Records a latency span into `histogram` (and, when tracing is on, a
// trace event of `type`) covering the scope's lifetime. Captures the
// enabled flag at construction so a mid-scope toggle cannot tear the
// measurement.
class ScopedLatency {
 public:
  ScopedLatency(LatencyHistogram& histogram, Counter& counter,
                TraceEventType type)
      : histogram_(histogram),
        counter_(counter),
        type_(type),
        enabled_(Enabled()),
        start_ns_(enabled_ ? NowNs() : 0) {}

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

  // Optional per-type payload for the trace event.
  void set_args(double a, double b) {
    a_ = a;
    b_ = b;
  }

  ~ScopedLatency() {
    if (!enabled_) return;
    const int64_t dur = NowNs() - start_ns_;
    counter_.Inc();
    histogram_.Record(dur);
    MLQ_TRACE_EVENT(type_, start_ns_, dur, a_, b_);
  }

 private:
  LatencyHistogram& histogram_;
  Counter& counter_;
  TraceEventType type_;
  bool enabled_;
  int64_t start_ns_;
  double a_ = 0.0;
  double b_ = 0.0;
};

}  // namespace obs
}  // namespace mlq

#endif  // MLQ_OBS_OBS_H_
