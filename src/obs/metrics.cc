#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <vector>

namespace mlq {
namespace obs {

std::atomic<bool> g_metrics_enabled{false};

void SetEnabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

int64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point process_start = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              process_start)
      .count();
}

int CurrentThreadId() {
  static std::atomic<int> next_id{0};
  thread_local const int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// --- LatencyHistogram ------------------------------------------------------

namespace {

int BucketIndex(int64_t ns) {
  if (ns < 2) return 0;
  const int width = std::bit_width(static_cast<uint64_t>(ns));
  // bit_width(ns) - 1 = floor(log2(ns)), so values in [2^i, 2^(i+1)) land
  // in bucket i.
  return std::min(width - 1, LatencyHistogram::kNumBuckets - 1);
}

}  // namespace

void LatencyHistogram::Record(int64_t ns) {
  if (ns < 0) ns = 0;
  buckets_[static_cast<size_t>(BucketIndex(ns))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  int64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

int64_t LatencyHistogram::BucketUpperNs(int i) {
  // Bucket 0 = [0, 2); bucket i = [2^i, 2^(i+1)); the last bucket is open.
  if (i >= kNumBuckets - 1) return INT64_MAX;
  return int64_t{1} << (i + 1);
}

namespace {

// Shared interpolation over a copied bucket array: used by the live
// histogram and by HistogramSnapshot, so interval quantiles match the
// cumulative ones bucket-for-bucket.
double QuantileFromBuckets(
    const std::array<uint64_t, LatencyHistogram::kNumBuckets>& buckets,
    double q, int64_t fallback_max_ns) {
  constexpr int kNumBuckets = LatencyHistogram::kNumBuckets;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = 0;
  for (const uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const double in_bucket = static_cast<double>(buckets[static_cast<size_t>(i)]);
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= target) {
      const double lower = i == 0 ? 0.0 : static_cast<double>(int64_t{1} << i);
      const double upper =
          i >= kNumBuckets - 1
              ? static_cast<double>(int64_t{1} << (kNumBuckets - 1)) * 2.0
              : static_cast<double>(LatencyHistogram::BucketUpperNs(i));
      const double fraction =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return lower + fraction * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(fallback_max_ns);
}

}  // namespace

double LatencyHistogram::Quantile(double q) const {
  std::array<uint64_t, kNumBuckets> snapshot;
  for (int i = 0; i < kNumBuckets; ++i) {
    snapshot[static_cast<size_t>(i)] = bucket(i);
  }
  return QuantileFromBuckets(snapshot, q, max_ns());
}

double HistogramSnapshot::Quantile(double q) const {
  return QuantileFromBuckets(buckets, q, max_ns);
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& base) const {
  HistogramSnapshot delta;
  delta.count = std::max<int64_t>(count - base.count, 0);
  delta.sum_ns = std::max<int64_t>(sum_ns - base.sum_ns, 0);
  // max is not subtractable; the cumulative max bounds the interval max.
  delta.max_ns = max_ns;
  for (size_t i = 0; i < buckets.size(); ++i) {
    delta.buckets[i] =
        buckets[i] >= base.buckets[i] ? buckets[i] - base.buckets[i] : 0;
  }
  return delta;
}

void HistogramSnapshot::Accumulate(const HistogramSnapshot& other) {
  count += other.count;
  sum_ns += other.sum_ns;
  max_ns = std::max(max_ns, other.max_ns);
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never freed.
  return *registry;
}

template <typename T>
T& MetricsRegistry::FindOrCreate(
    std::map<std::string, std::unique_ptr<T>>& family, const std::string& name,
    const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = family.find(name);
  if (it == family.end()) {
    it = family.emplace(name, std::make_unique<T>()).first;
    if (!help.empty()) help_[name] = help;
  }
  return *it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return FindOrCreate(counters_, name, help);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return FindOrCreate(gauges_, name, help);
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& help) {
  return FindOrCreate(histograms_, name, help);
}

namespace {

void WriteHelpAndType(std::ostream& os, const std::string& name,
                      const std::map<std::string, std::string>& help,
                      const char* type) {
  const auto it = help.find(name);
  if (it != help.end()) os << "# HELP " << name << " " << it->second << "\n";
  os << "# TYPE " << name << " " << type << "\n";
}

// JSON string escaping is unnecessary here: metric names are C identifiers
// by construction. Doubles render with %.17g-style round-trip precision via
// ostream default; NaN/Inf are mapped to null per JSON.
void WriteJsonNumber(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

void MetricsRegistry::RenderPrometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    WriteHelpAndType(os, name, help_, "counter");
    os << name << " " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    WriteHelpAndType(os, name, help_, "gauge");
    os << name << " " << gauge->Value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    WriteHelpAndType(os, name, help_, "histogram");
    uint64_t cumulative = 0;
    int highest = 0;
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      if (histogram->bucket(i) > 0) highest = i;
    }
    for (int i = 0; i <= highest; ++i) {
      cumulative += histogram->bucket(i);
      os << name << "_bucket{le=\"" << LatencyHistogram::BucketUpperNs(i)
         << "\"} " << cumulative << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << histogram->count() << "\n";
    os << name << "_sum " << histogram->sum_ns() << "\n";
    os << name << "_count " << histogram->count() << "\n";
  }
}

void MetricsRegistry::RenderJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << counter->Value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":";
    WriteJsonNumber(os, gauge->Value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << histogram->count()
       << ",\"sum_ns\":" << histogram->sum_ns()
       << ",\"max_ns\":" << histogram->max_ns() << ",\"p50_ns\":";
    WriteJsonNumber(os, histogram->Quantile(0.50));
    os << ",\"p90_ns\":";
    WriteJsonNumber(os, histogram->Quantile(0.90));
    os << ",\"p99_ns\":";
    WriteJsonNumber(os, histogram->Quantile(0.99));
    os << ",\"p999_ns\":";
    WriteJsonNumber(os, histogram->Quantile(0.999));
    os << "}";
  }
  os << "}}";
}

void MetricsRegistry::RenderLatencySummary(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "latency histograms (ns):\n";
  bool any = false;
  for (const auto& [name, histogram] : histograms_) {
    if (histogram->count() == 0) continue;
    any = true;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  %-28s count=%-9lld p50=%-10.0f p90=%-10.0f p99=%-10.0f "
                  "p999=%-10.0f max=%lld\n",
                  name.c_str(), static_cast<long long>(histogram->count()),
                  histogram->Quantile(0.50), histogram->Quantile(0.90),
                  histogram->Quantile(0.99), histogram->Quantile(0.999),
                  static_cast<long long>(histogram->max_ns()));
    os << buf;
  }
  if (!any) os << "  (none recorded)\n";
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.ts_ns = NowNs();
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot& h = snapshot.histograms[name];
    h.count = histogram->count();
    h.sum_ns = histogram->sum_ns();
    h.max_ns = histogram->max_ns();
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      h.buckets[static_cast<size_t>(i)] = histogram->bucket(i);
    }
  }
  return snapshot;
}

MetricsSnapshot MetricsRegistry::SnapshotAndReset() {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.ts_ns = NowNs();
  for (auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Drain();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();  // Levels: read, don't reset.
  }
  for (auto& [name, histogram] : histograms_) {
    HistogramSnapshot& h = snapshot.histograms[name];
    // Per-field exchange: a Record racing the scrape lands its bucket and
    // count increments either in this snapshot or the next, never in
    // neither (each fetch_add pairs with exactly one exchange read).
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      h.buckets[static_cast<size_t>(i)] =
          histogram->buckets_[static_cast<size_t>(i)].exchange(
              0, std::memory_order_relaxed);
    }
    h.count = histogram->count_.exchange(0, std::memory_order_relaxed);
    h.sum_ns = histogram->sum_ns_.exchange(0, std::memory_order_relaxed);
    h.max_ns = histogram->max_ns_.exchange(0, std::memory_order_relaxed);
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsRegistry::Help(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = help_.find(name);
  return it == help_.end() ? std::string() : it->second;
}

// --- CoreMetrics -----------------------------------------------------------

CoreMetrics& Core() {
  MetricsRegistry& r = MetricsRegistry::Global();
  static CoreMetrics* core = new CoreMetrics{
      r.GetCounter("mlq_predicts_total", "Quadtree point predictions served"),
      r.GetCounter("mlq_predict_batches_total",
                   "Batched prediction calls served"),
      r.GetCounter("mlq_inserts_total", "Cost observations inserted"),
      r.GetCounter("mlq_partitions_total", "Quadtree nodes materialized"),
      r.GetCounter("mlq_compressions_total", "Compression passes run"),
      r.GetCounter("mlq_compress_bytes_freed_total",
                   "Logical bytes freed by compression"),
      r.GetCounter("mlq_expansions_total", "Root-doubling space expansions"),
      r.GetCounter("mlq_feedback_enqueued_total",
                   "Observations enqueued into shard feedback queues"),
      r.GetCounter("mlq_feedback_applied_total",
                   "Queued observations applied to shard trees"),
      r.GetCounter("mlq_feedback_dropped_total",
                   "Observations evicted by feedback-queue overflow"),
      r.GetCounter("mlq_catalog_feedback_total",
                   "UDF execution outcomes recorded into the catalog"),
      r.GetCounter("mlq_plans_total", "Queries planned"),
      r.GetCounter("mlq_plan_audits_total", "LEO-style plan audits run"),
      r.GetCounter("mlq_query_execs_total", "Queries executed"),
      r.GetCounter("mlq_observe_batches_total", "Batched feedback calls applied"),
      r.GetCounter("mlq_arena_compactions_total",
                   "Shared node-arena compaction passes"),
      r.GetCounter("mlq_arena_compact_bytes_reclaimed_total",
                   "Physical bytes reclaimed by arena compaction"),
      r.GetCounter("mlq_maintenance_epochs_total",
                   "Arena maintenance epochs completed"),
      r.GetCounter("mlq_maintenance_steps_total",
                   "Incremental maintenance quiesce windows run"),
      r.GetCounter("mlq_drift_events_total",
                   "Drift-detector firings (abrupt + gradual)"),
      r.GetCounter("mlq_decay_epochs_total",
                   "Summary decay epochs advanced across all trees"),
      r.GetCounter("mlq_governor_rebalances_total",
                   "Catalog-governor budget rebalances run"),
      r.GetCounter("mlq_governor_bytes_granted_total",
                   "Budget bytes granted to growing entries by the governor"),
      r.GetCounter("mlq_governor_bytes_reclaimed_total",
                   "Budget bytes reclaimed from shrinking entries"),
      r.GetCounter("mlq_governor_evictions_total",
                   "Whole-model evictions to the governor snapshot store"),
      r.GetCounter("mlq_governor_reloads_total",
                   "Evicted models restored from snapshots on re-use"),
      r.GetCounter("mlq_risk_plans_total",
                   "Plans costed with a non-zero risk knob"),
      r.GetCounter("mlq_plan_risk_reorders_total",
                   "Risk-costed plans whose order differs from classical rank"),
      r.GetHistogram("mlq_predict_latency_ns", "Predict latency"),
      r.GetHistogram("mlq_predict_batch_latency_ns",
                     "Whole-batch predict latency"),
      r.GetHistogram("mlq_insert_latency_ns", "Insert latency"),
      r.GetHistogram("mlq_compress_latency_ns", "Compression pass latency"),
      r.GetHistogram("mlq_plan_latency_ns", "Query planning latency"),
      r.GetHistogram("mlq_query_exec_latency_ns", "Query execution latency"),
      r.GetHistogram("mlq_model_lock_wait_ns",
                     "Wait for a model/shard mutex on the serving path"),
      r.GetHistogram("mlq_observe_batch_latency_ns",
                     "Whole-batch feedback latency"),
      r.GetHistogram("mlq_observe_batch_points",
                     "Observations per feedback batch (log2 buckets)"),
      r.GetHistogram("mlq_arena_compact_latency_ns",
                     "Shared node-arena compaction pass latency"),
      r.GetHistogram("mlq_maintenance_pause_ns",
                     "Serving pause per maintenance quiesce window"),
      r.GetHistogram("mlq_predict_stddev",
                     "Per-prediction cost-estimate stddev (milli-units)"),
      r.GetGauge("mlq_model_max_cost_drift",
                 "Max multiplicative cost-estimate drift from the last audit"),
      r.GetGauge("mlq_model_max_selectivity_drift",
                 "Max selectivity drift from the last plan audit"),
      r.GetGauge("mlq_compress_sse_threshold",
                 "th_SSE after the most recent compression"),
      r.GetGauge("mlq_arena_fragmentation",
                 "Reclaimable slot fraction of the worst catalog arena"),
      r.GetGauge("mlq_model_staleness",
                 "Worst fast/slow windowed-error ratio across tracked models"),
      r.GetGauge("mlq_governor_resident_models",
                 "Catalog entries currently resident (not evicted)"),
      r.GetGauge("mlq_governor_allocated_bytes",
                 "Per-entry byte budgets summed after the last rebalance"),
  };
  return *core;
}

}  // namespace obs
}  // namespace mlq
