#include "obs/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

namespace mlq {
namespace obs {

namespace {

void WriteJsonNumber(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

// Model names are caller-supplied UDF identifiers; escape both for JSON
// bodies and Prometheus label values (the two formats share this set of
// specials).
void WriteEscaped(std::ostream& os, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << ch;
    }
  }
}

void WriteHealthGauge(std::ostream& os, const char* name, const char* help,
                      const std::vector<ModelHealth>& health,
                      double (*field)(const ModelHealth&)) {
  os << "# HELP " << name << " " << help << "\n";
  os << "# TYPE " << name << " gauge\n";
  for (const ModelHealth& h : health) {
    os << name << "{model=\"";
    WriteEscaped(os, h.model);
    if (!h.tenant.empty()) {
      os << "\",tenant=\"";
      WriteEscaped(os, h.tenant);
    }
    os << "\"} " << field(h) << "\n";
  }
}

}  // namespace

void RenderPrometheusExposition(std::ostream& os,
                                const MetricsSnapshot& cumulative,
                                const TelemetryFrame* frame,
                                const std::vector<ModelHealth>& health) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const auto help_line = [&](const std::string& name, const char* type) {
    const std::string help = registry.Help(name);
    if (!help.empty()) os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " " << type << "\n";
  };

  for (const auto& [name, value] : cumulative.counters) {
    help_line(name, "counter");
    os << name << " " << value << "\n";
    if (frame != nullptr) {
      const auto rate = frame->counter_rates.find(name);
      if (rate != frame->counter_rates.end()) {
        os << "# TYPE " << name << "_rate_per_s gauge\n";
        os << name << "_rate_per_s " << rate->second << "\n";
      }
    }
  }
  for (const auto& [name, value] : cumulative.gauges) {
    help_line(name, "gauge");
    os << name << " " << value << "\n";
  }
  for (const auto& [name, hist] : cumulative.histograms) {
    help_line(name, "histogram");
    uint64_t running = 0;
    int highest = 0;
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      if (hist.buckets[static_cast<size_t>(i)] > 0) highest = i;
    }
    for (int i = 0; i <= highest; ++i) {
      running += hist.buckets[static_cast<size_t>(i)];
      os << name << "_bucket{le=\"" << LatencyHistogram::BucketUpperNs(i)
         << "\"} " << running << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << hist.count << "\n";
    os << name << "_sum " << hist.sum_ns << "\n";
    os << name << "_count " << hist.count << "\n";
    if (frame != nullptr) {
      // Interval quantiles as a summary-typed sibling: cumulative log2
      // buckets blur tail movement, but a 1-interval p999 shows a pause
      // the moment it happens.
      const auto it = frame->histograms.find(name);
      if (it != frame->histograms.end() && it->second.count > 0) {
        os << "# TYPE " << name << "_interval summary\n";
        const TelemetryFrame::HistogramStats& s = it->second;
        os << name << "_interval{quantile=\"0.5\"} " << s.p50_ns << "\n";
        os << name << "_interval{quantile=\"0.9\"} " << s.p90_ns << "\n";
        os << name << "_interval{quantile=\"0.99\"} " << s.p99_ns << "\n";
        os << name << "_interval{quantile=\"0.999\"} " << s.p999_ns << "\n";
        os << name << "_interval_sum " << s.mean_ns * s.count << "\n";
        os << name << "_interval_count " << s.count << "\n";
      }
    }
  }

  if (!health.empty()) {
    WriteHealthGauge(os, "mlq_model_health_bytes",
                     "Logical model bytes for this catalog entry.", health,
                     [](const ModelHealth& h) {
                       return static_cast<double>(h.bytes);
                     });
    WriteHealthGauge(os, "mlq_model_health_nodes",
                     "Tree nodes across the entry's models.", health,
                     [](const ModelHealth& h) {
                       return static_cast<double>(h.nodes);
                     });
    WriteHealthGauge(os, "mlq_model_health_observations",
                     "Executions folded into the windowed actuals.", health,
                     [](const ModelHealth& h) {
                       return static_cast<double>(h.observations);
                     });
    WriteHealthGauge(os, "mlq_model_health_windowed_nae",
                     "Fast-window mean relative prediction error.", health,
                     [](const ModelHealth& h) { return h.windowed_nae; });
    WriteHealthGauge(os, "mlq_model_health_staleness",
                     "Worst fast/slow windowed-error ratio (1 = calibrated).",
                     health,
                     [](const ModelHealth& h) { return h.staleness; });
    WriteHealthGauge(os, "mlq_model_health_fragmentation",
                     "Reclaimable slot fraction of the entry's arena.", health,
                     [](const ModelHealth& h) { return h.fragmentation; });
    WriteHealthGauge(os, "mlq_model_health_accuracy_per_byte",
                     "1 / ((1 + windowed_nae) * bytes).", health,
                     [](const ModelHealth& h) { return h.accuracy_per_byte; });
    WriteHealthGauge(os, "mlq_model_health_traffic",
                     "Predictions served by this entry since registration.",
                     health, [](const ModelHealth& h) {
                       return static_cast<double>(h.traffic);
                     });
    WriteHealthGauge(os, "mlq_model_health_budget_bytes",
                     "Entry-level byte budget granted by the governor.",
                     health, [](const ModelHealth& h) {
                       return static_cast<double>(h.budget_bytes);
                     });
  }

  if (frame != nullptr) {
    os << "# TYPE mlq_telemetry_scrapes_total counter\n";
    os << "mlq_telemetry_scrapes_total " << frame->sequence << "\n";
    os << "# TYPE mlq_telemetry_interval_seconds gauge\n";
    os << "mlq_telemetry_interval_seconds " << frame->interval_s << "\n";
  }
}

PrometheusFileSink::PrometheusFileSink(std::string path)
    : path_(std::move(path)) {}

void PrometheusFileSink::Consume(const TelemetryFrame& frame) {
  // Render fully before touching the file so a scraper that reads
  // mid-rewrite sees at worst a short file, not a torn line buffer.
  std::ostringstream body;
  RenderPrometheusExposition(body, frame.cumulative, &frame, frame.health);
  std::ofstream out(path_, std::ios::trunc);
  if (out) out << body.str();
}

JsonlFileSink::JsonlFileSink(std::string path) : path_(std::move(path)) {}

void JsonlFileSink::Consume(const TelemetryFrame& frame) {
  std::ofstream out(path_, std::ios::app);
  if (!out) return;
  RenderTelemetryFrameJsonl(out, frame);
}

void RenderTelemetryFrameJsonl(std::ostream& os, const TelemetryFrame& frame) {
  std::ostream& out = os;
  out << "{\"ts_ns\":" << frame.ts_ns << ",\"seq\":" << frame.sequence
      << ",\"interval_s\":";
  WriteJsonNumber(out, frame.interval_s);
  out << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, delta] : frame.counter_deltas) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"delta\":" << delta << ",\"rate_per_s\":";
    const auto rate = frame.counter_rates.find(name);
    WriteJsonNumber(out,
                    rate == frame.counter_rates.end() ? 0.0 : rate->second);
    const auto total = frame.cumulative.counters.find(name);
    out << ",\"total\":"
        << (total == frame.cumulative.counters.end() ? 0 : total->second)
        << "}";
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : frame.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":";
    WriteJsonNumber(out, value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, s] : frame.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << s.count << ",\"rate_per_s\":";
    WriteJsonNumber(out, s.rate_per_s);
    out << ",\"mean_ns\":";
    WriteJsonNumber(out, s.mean_ns);
    out << ",\"p50_ns\":";
    WriteJsonNumber(out, s.p50_ns);
    out << ",\"p90_ns\":";
    WriteJsonNumber(out, s.p90_ns);
    out << ",\"p99_ns\":";
    WriteJsonNumber(out, s.p99_ns);
    out << ",\"p999_ns\":";
    WriteJsonNumber(out, s.p999_ns);
    out << "}";
  }
  out << "},\"health\":[";
  first = true;
  for (const ModelHealth& h : frame.health) {
    if (!first) out << ",";
    first = false;
    out << "{\"model\":\"";
    WriteEscaped(out, h.model);
    out << "\",\"tenant\":\"";
    WriteEscaped(out, h.tenant);
    out << "\",\"bytes\":" << h.bytes << ",\"nodes\":" << h.nodes
        << ",\"budget_bytes\":" << h.budget_bytes
        << ",\"traffic\":" << h.traffic
        << ",\"observations\":" << h.observations << ",\"windowed_nae\":";
    WriteJsonNumber(out, h.windowed_nae);
    out << ",\"staleness\":";
    WriteJsonNumber(out, h.staleness);
    out << ",\"fragmentation\":";
    WriteJsonNumber(out, h.fragmentation);
    out << ",\"accuracy_per_byte\":";
    WriteJsonNumber(out, h.accuracy_per_byte);
    out << "}";
  }
  out << "],\"events\":" << frame.events.size() << "}\n";
}

TelemetryExporter::TelemetryExporter(TelemetryExporterOptions options)
    : options_(options), last_scrape_ns_(NowNs()) {}

TelemetryExporter::~TelemetryExporter() { Stop(); }

void TelemetryExporter::AddSink(std::unique_ptr<TelemetrySink> sink) {
  std::lock_guard<std::mutex> lock(scrape_mutex_);
  sinks_.push_back(std::move(sink));
}

void TelemetryExporter::SetHealthProvider(
    std::function<std::vector<ModelHealth>()> provider) {
  std::lock_guard<std::mutex> lock(scrape_mutex_);
  health_provider_ = std::move(provider);
}

bool TelemetryExporter::Start() {
  if (options_.interval_ms <= 0) return false;
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_) return false;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { ThreadMain(); });
  return true;
}

void TelemetryExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    running_ = false;
  }
  // Flush the tail interval so nothing recorded between the last periodic
  // scrape and Stop() is lost to the sinks.
  if (Enabled()) ScrapeOnce();
}

bool TelemetryExporter::running() const {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  return running_;
}

void TelemetryExporter::ThreadMain() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  while (!stop_requested_) {
    if (wake_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      break;
    }
    // Disabled obs: skip the scrape entirely — no registry access, no
    // sink I/O, just the timer. Re-enabling picks up where it left off.
    if (!Enabled()) continue;
    lock.unlock();
    ScrapeOnce();
    lock.lock();
  }
}

TelemetryFrame TelemetryExporter::ScrapeOnce() {
  std::lock_guard<std::mutex> lock(scrape_mutex_);
  return ScrapeLocked();
}

TelemetryFrame TelemetryExporter::ScrapeLocked() {
  TelemetryFrame frame;
  MetricsSnapshot delta = MetricsRegistry::Global().SnapshotAndReset();
  frame.ts_ns = delta.ts_ns;
  frame.sequence = ++sequence_;
  frame.interval_s =
      static_cast<double>(delta.ts_ns - last_scrape_ns_) * 1e-9;
  last_scrape_ns_ = delta.ts_ns;
  const double interval_s = std::max(frame.interval_s, 1e-9);

  // Fold the drained interval into the lifetime-cumulative view before
  // copying it out, so sinks always see totals >= every prior frame.
  cumulative_.ts_ns = delta.ts_ns;
  for (const auto& [name, value] : delta.counters) {
    frame.counter_deltas[name] = value;
    frame.counter_rates[name] = static_cast<double>(value) / interval_s;
    cumulative_.counters[name] += value;
  }
  frame.gauges = delta.gauges;
  cumulative_.gauges = delta.gauges;
  for (const auto& [name, hist] : delta.histograms) {
    TelemetryFrame::HistogramStats stats;
    stats.count = hist.count;
    stats.rate_per_s = static_cast<double>(hist.count) / interval_s;
    stats.mean_ns = hist.count > 0 ? static_cast<double>(hist.sum_ns) /
                                         static_cast<double>(hist.count)
                                   : 0.0;
    stats.p50_ns = hist.Quantile(0.50);
    stats.p90_ns = hist.Quantile(0.90);
    stats.p99_ns = hist.Quantile(0.99);
    stats.p999_ns = hist.Quantile(0.999);
    frame.histograms[name] = stats;
    cumulative_.histograms[name].Accumulate(hist);
  }
  frame.cumulative = cumulative_;

  if (health_provider_) frame.health = health_provider_();
  frame.events = GlobalEventLog().SnapshotSince(&events_seen_);

  for (const std::unique_ptr<TelemetrySink>& sink : sinks_) {
    sink->Consume(frame);
  }
  latest_ = frame;
  return frame;
}

TelemetryFrame TelemetryExporter::latest_frame() const {
  std::lock_guard<std::mutex> lock(scrape_mutex_);
  return latest_;
}

int64_t TelemetryExporter::scrapes() const {
  std::lock_guard<std::mutex> lock(scrape_mutex_);
  return sequence_;
}

}  // namespace obs
}  // namespace mlq
