#include "obs/event_log.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <ostream>

namespace mlq {
namespace obs {

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kDriftFired:
      return "drift_fired";
    case EventKind::kMaintenanceEpoch:
      return "maintenance_epoch";
    case EventKind::kCompressionEpoch:
      return "compression_epoch";
    case EventKind::kDecayEpochs:
      return "decay_epochs";
    case EventKind::kModelLoad:
      return "model_load";
    case EventKind::kModelFlush:
      return "model_flush";
    case EventKind::kArenaCompaction:
      return "arena_compaction";
    case EventKind::kGovernorDecision:
      return "governor_decision";
    case EventKind::kModelEvict:
      return "model_evict";
    case EventKind::kModelReload:
      return "model_reload";
  }
  return "unknown";
}

std::string_view StructuredEvent::label_view() const {
  return {label, strnlen(label, kLabelCapacity)};
}

EventLog::EventLog(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {
  events_.resize(capacity_);
}

void EventLog::Append(EventKind kind, std::string_view label, double a,
                      double b, double c) {
  if (!Enabled()) return;
  StructuredEvent event;
  event.kind = kind;
  event.tid = CurrentThreadId();
  event.ts_ns = NowNs();
  event.a = a;
  event.b = b;
  event.c = c;
  const size_t n = std::min(label.size(), StructuredEvent::kLabelCapacity);
  std::memcpy(event.label, label.data(), n);
  std::lock_guard<std::mutex> lock(mutex_);
  if (size_ < capacity_) {
    events_[(start_ + size_) % capacity_] = event;
    ++size_;
  } else {
    // Full: the slot at start_ is the oldest — overwrite it and advance.
    events_[start_] = event;
    start_ = (start_ + 1) % capacity_;
    ++dropped_;
  }
  ++total_;
}

std::vector<StructuredEvent> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StructuredEvent> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(events_[(start_ + i) % capacity_]);
  }
  return out;
}

std::vector<StructuredEvent> EventLog::Drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StructuredEvent> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(events_[(start_ + i) % capacity_]);
  }
  start_ = 0;
  size_ = 0;
  return out;
}

std::vector<StructuredEvent> EventLog::SnapshotSince(int64_t* cursor) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Resident events are the append indices [total_ - size_, total_).
  const int64_t resident_begin = total_ - static_cast<int64_t>(size_);
  const int64_t from = std::max(*cursor, resident_begin);
  std::vector<StructuredEvent> out;
  if (from < total_) {
    out.reserve(static_cast<size_t>(total_ - from));
    for (int64_t t = from; t < total_; ++t) {
      const size_t i = static_cast<size_t>(t - resident_begin);
      out.push_back(events_[(start_ + i) % capacity_]);
    }
  }
  *cursor = total_;
  return out;
}

int64_t EventLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

int64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  start_ = 0;
  size_ = 0;
  total_ = 0;
  dropped_ = 0;
}

EventLog& GlobalEventLog() {
  static EventLog* log = new EventLog();  // Never freed.
  return *log;
}

namespace {

// Labels are model/mode names (C identifiers in practice), but a UDF name
// is caller-supplied, so escape the JSON specials anyway.
void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << ch;
    }
  }
  os << '"';
}

void WriteJsonNumber(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

void ExportEventsJsonl(std::ostream& os,
                       const std::vector<StructuredEvent>& events) {
  for (const StructuredEvent& e : events) {
    os << "{\"ts_ns\":" << e.ts_ns << ",\"kind\":\"" << EventKindName(e.kind)
       << "\",\"tid\":" << e.tid << ",\"label\":";
    WriteJsonString(os, e.label_view());
    os << ",\"a\":";
    WriteJsonNumber(os, e.a);
    os << ",\"b\":";
    WriteJsonNumber(os, e.b);
    os << ",\"c\":";
    WriteJsonNumber(os, e.c);
    os << "}\n";
  }
}

}  // namespace obs
}  // namespace mlq
