#include "obs/trace_ring.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace mlq {
namespace obs {

std::atomic<bool> g_trace_enabled{false};

void SetTraceEnabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::string_view TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kPredict:
      return "predict";
    case TraceEventType::kInsert:
      return "insert";
    case TraceEventType::kPartition:
      return "partition";
    case TraceEventType::kCompress:
      return "compress";
    case TraceEventType::kExpand:
      return "expand";
    case TraceEventType::kFeedbackDrop:
      return "feedback_drop";
    case TraceEventType::kFeedbackDrain:
      return "feedback_drain";
    case TraceEventType::kPlan:
      return "plan";
    case TraceEventType::kPlanAudit:
      return "plan_audit";
    case TraceEventType::kQueryExec:
      return "query_exec";
  }
  return "unknown";
}

// Per-type names for the two payload slots, mirrored in the enum comments.
static void ArgNames(TraceEventType type, const char** a, const char** b) {
  switch (type) {
    case TraceEventType::kPredict:
      *a = "value";
      *b = "depth";
      return;
    case TraceEventType::kInsert:
      *a = "value";
      *b = "path_len";
      return;
    case TraceEventType::kPartition:
      *a = "depth";
      *b = "child_index";
      return;
    case TraceEventType::kCompress:
      *a = "bytes_freed";
      *b = "th_sse";
      return;
    case TraceEventType::kExpand:
      *a = "new_max_depth";
      *b = "unused";
      return;
    case TraceEventType::kFeedbackDrop:
      *a = "pending";
      *b = "unused";
      return;
    case TraceEventType::kFeedbackDrain:
      *a = "applied";
      *b = "unused";
      return;
    case TraceEventType::kPlan:
      *a = "num_predicates";
      *b = "expected_cost_per_row_us";
      return;
    case TraceEventType::kPlanAudit:
      *a = "max_cost_drift";
      *b = "max_selectivity_drift";
      return;
    case TraceEventType::kQueryExec:
      *a = "rows_in";
      *b = "actual_cost_us";
      return;
  }
  *a = "a";
  *b = "b";
}

TraceRing::TraceRing(size_t capacity) {
  const uint64_t rounded = std::bit_ceil(std::max<uint64_t>(capacity, 2));
  mask_ = rounded - 1;
  slots_ = std::make_unique<Slot[]>(rounded);
}

void TraceRing::Record(TraceEventType type, int64_t ts_ns, int64_t dur_ns,
                       double a, double b) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Invalidate, fill, publish: a reader that observes seq == ticket + 1 with
  // acquire order also observes the payload stores below.
  slot.seq.store(0, std::memory_order_relaxed);
  slot.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  slot.tid.store(CurrentThreadId(), std::memory_order_relaxed);
  slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t cap = mask_ + 1;
  const uint64_t begin = end > cap ? end - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t i = begin; i < end; ++i) {
    const Slot& slot = slots_[i & mask_];
    if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
    TraceEvent event;
    event.type =
        static_cast<TraceEventType>(slot.type.load(std::memory_order_relaxed));
    event.tid = slot.tid.load(std::memory_order_relaxed);
    event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    event.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    // Discard the copy if a writer reclaimed the slot mid-read.
    if (slot.seq.load(std::memory_order_relaxed) != i + 1) continue;
    out.push_back(event);
  }
  return out;
}

int64_t TraceRing::overwritten() const {
  const uint64_t recorded = next_.load(std::memory_order_relaxed);
  const uint64_t cap = mask_ + 1;
  return recorded > cap ? static_cast<int64_t>(recorded - cap) : 0;
}

void TraceRing::Clear() {
  const uint64_t cap = mask_ + 1;
  for (uint64_t i = 0; i < cap; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_release);
}

TraceRing& GlobalTraceRing() {
  static TraceRing* ring = new TraceRing();  // Never freed.
  return *ring;
}

void ExportChromeTrace(std::ostream& os,
                       const std::vector<TraceEvent>& events) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[384];
  bool first = true;
  for (const TraceEvent& event : events) {
    const char* a_name;
    const char* b_name;
    ArgNames(event.type, &a_name, &b_name);
    const double ts_us = static_cast<double>(event.ts_ns) / 1000.0;
    const double dur_us = static_cast<double>(event.dur_ns) / 1000.0;
    int n;
    if (event.dur_ns > 0) {
      n = std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"cat\":\"mlq\",\"ph\":\"X\",\"pid\":1,"
          "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"%s\":%.17g,"
          "\"%s\":%.17g}}",
          first ? "" : ",", std::string(TraceEventTypeName(event.type)).c_str(),
          event.tid, ts_us, dur_us, a_name, event.a, b_name, event.b);
    } else {
      n = std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"cat\":\"mlq\",\"ph\":\"i\",\"s\":\"t\","
          "\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{\"%s\":%.17g,"
          "\"%s\":%.17g}}",
          first ? "" : ",", std::string(TraceEventTypeName(event.type)).c_str(),
          event.tid, ts_us, a_name, event.a, b_name, event.b);
    }
    if (n > 0) os.write(buf, std::min(n, static_cast<int>(sizeof(buf) - 1)));
    first = false;
  }
  os << "]}";
}

}  // namespace obs
}  // namespace mlq
