#ifndef MLQ_OBS_TELEMETRY_H_
#define MLQ_OBS_TELEMETRY_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace mlq {
namespace obs {

// Per-model health snapshot, published through the exporter as labeled
// gauges (`mlq_model_health_*{model="..."}`). Filled by
// CostCatalog::ReadModelHealth(); the accuracy-per-byte column is the
// signal a catalog-scale memory governor redistributes byte budget by.
struct ModelHealth {
  std::string model;        // UDF name (the `model` label).
  std::string tenant;       // Owning tenant (the `tenant` label).
  int64_t bytes = 0;        // Logical bytes across the entry's models.
  // Entry-level byte budget currently granted (split across the entry's
  // models); 0 when the catalog has never re-budgeted the entry.
  int64_t budget_bytes = 0;
  // Predictions served by this entry since registration (the governor's
  // LRU-by-traffic admission signal).
  int64_t traffic = 0;
  int64_t nodes = 0;        // Tree nodes across the entry's models.
  int64_t observations = 0; // Executions folded into the windowed actuals.
  // Windowed NAE-style error signal: normalized deviation of the fast
  // actual-cost window from the slow baseline (|fast - slow| / slow).
  // 0 when stable or when nothing has been observed yet; ~(k - 1) right
  // after a k-fold cost step.
  double windowed_nae = 0.0;
  // Worst fast/slow windowed-error ratio of the entry's drift detectors
  // (1 = calibrated).
  double staleness = 1.0;
  // Reclaimable slot fraction of the arena this model draws nodes from.
  double fragmentation = 0.0;
  // 1 / ((1 + windowed_nae) * bytes): how much accuracy each budget byte
  // buys. Models with low error on a small footprint score high; the
  // governor grows low scorers that are drifting and shrinks converged
  // high-byte entries.
  double accuracy_per_byte = 0.0;
};

// One computed scrape: per-interval deltas and rates plus the exporter's
// lifetime cumulative totals (what a Prometheus endpoint must expose —
// the registry itself is drained by the scrape).
struct TelemetryFrame {
  int64_t ts_ns = 0;       // Scrape time, obs::NowNs timebase.
  double interval_s = 0.0; // Wall seconds since the previous scrape.
  int64_t sequence = 0;    // 1-based scrape number.

  struct HistogramStats {
    int64_t count = 0;     // Records in this interval.
    double rate_per_s = 0.0;
    double mean_ns = 0.0;
    double p50_ns = 0.0;
    double p90_ns = 0.0;
    double p99_ns = 0.0;
    double p999_ns = 0.0;
  };

  std::map<std::string, int64_t> counter_deltas;
  std::map<std::string, double> counter_rates;  // delta / interval_s.
  std::map<std::string, double> gauges;         // Levels, as scraped.
  std::map<std::string, HistogramStats> histograms;  // Interval stats.

  // Exporter-lifetime cumulative totals (sum of all scrape deltas).
  MetricsSnapshot cumulative;

  // Per-model health gauges as of this scrape (empty without a provider).
  std::vector<ModelHealth> health;

  // Journal events appended since the previous scrape (oldest first;
  // truncated only if the journal wrapped within one interval).
  std::vector<StructuredEvent> events;
};

// A consumer of scrape frames. Sinks run on the exporter thread; they must
// not call back into the exporter.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void Consume(const TelemetryFrame& frame) = 0;
};

// Rewrites a Prometheus text-exposition file on every scrape: # HELP/#
// TYPE'd counters and histograms from the cumulative totals, gauges,
// summary-style interval quantiles ({quantile="..."} labels), per-counter
// rate gauges, and the labeled per-model health gauges.
class PrometheusFileSink : public TelemetrySink {
 public:
  explicit PrometheusFileSink(std::string path);
  void Consume(const TelemetryFrame& frame) override;

 private:
  std::string path_;
};

// Appends one JSON object per scrape to a JSONL time-series file:
// {"ts_ns", "seq", "interval_s", "counters": {name: {delta, rate_per_s,
// total}}, "gauges", "histograms": {name: {count, rate_per_s, mean_ns,
// p50_ns, p90_ns, p99_ns, p999_ns}}, "health": [...], "events": n}.
class JsonlFileSink : public TelemetrySink {
 public:
  explicit JsonlFileSink(std::string path);
  void Consume(const TelemetryFrame& frame) override;

 private:
  std::string path_;
};

// Forwards frames to a callback (tests, `mlq_tool metrics --interval`).
class CallbackSink : public TelemetrySink {
 public:
  explicit CallbackSink(std::function<void(const TelemetryFrame&)> fn)
      : fn_(std::move(fn)) {}
  void Consume(const TelemetryFrame& frame) override { fn_(frame); }

 private:
  std::function<void(const TelemetryFrame&)> fn_;
};

struct TelemetryExporterOptions {
  // Scrape period for the background thread. Start() rejects <= 0.
  int64_t interval_ms = 1000;
};

// Continuous telemetry pipeline over the global metrics registry.
//
// A background thread scrapes the registry every interval via
// MetricsRegistry::SnapshotAndReset() — so each scrape IS the interval
// delta, increments are counted exactly once, and a concurrent ResetAll
// cannot drive a delta negative — then derives rates and interval
// latency quantiles (p50/p90/p99/p999), folds the deltas into a
// lifetime-cumulative snapshot for monotonic sinks, attaches the journal
// events and per-model health gauges, and hands the frame to every sink.
//
// Memory is bounded: the exporter state is one cumulative snapshot plus
// the most recent frame, independent of how long it runs; file sinks
// stream. With obs disabled the thread wakes, sees Enabled() false, and
// goes back to sleep without touching the registry — and a never-started
// exporter costs nothing at all.
//
// While the exporter runs it owns the registry's counts (scrapes drain
// them); other readers should consume the exporter's cumulative view
// (latest_frame().cumulative) rather than the registry.
class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryExporterOptions options = {});
  ~TelemetryExporter();  // Stops the thread if still running.

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  // Sinks and the health provider must be configured before Start() (or
  // between Stop() and a re-Start()); not thread-safe against a running
  // exporter.
  void AddSink(std::unique_ptr<TelemetrySink> sink);
  void SetHealthProvider(std::function<std::vector<ModelHealth>()> provider);

  // Starts the background scrape thread. Returns false (and does nothing)
  // when already running or interval_ms <= 0.
  bool Start();
  // Runs one final scrape (flushing the tail interval to the sinks), then
  // joins the thread. Idempotent.
  void Stop();
  bool running() const;

  // One synchronous scrape on the calling thread — the exporter's delta
  // logic without the thread, used by `mlq_tool metrics --interval` and
  // by tests. Also feeds the sinks. Safe concurrently with the thread.
  TelemetryFrame ScrapeOnce();

  // Copy of the most recent frame (sequence 0 when none yet).
  TelemetryFrame latest_frame() const;
  int64_t scrapes() const;

  const TelemetryExporterOptions& options() const { return options_; }

 private:
  void ThreadMain();
  TelemetryFrame ScrapeLocked();  // Requires scrape_mutex_.

  const TelemetryExporterOptions options_;

  // Serializes scrapes (thread vs ScrapeOnce) and guards all state below.
  mutable std::mutex scrape_mutex_;
  std::vector<std::unique_ptr<TelemetrySink>> sinks_;
  std::function<std::vector<ModelHealth>()> health_provider_;
  MetricsSnapshot cumulative_;
  TelemetryFrame latest_;
  int64_t last_scrape_ns_ = 0;
  int64_t events_seen_ = 0;  // GlobalEventLog total at the last scrape.
  int64_t sequence_ = 0;

  // Thread lifecycle.
  mutable std::mutex lifecycle_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

// Renders a full Prometheus text exposition from a cumulative snapshot
// (shared by PrometheusFileSink and the CLI's final print): counters,
// gauges, histograms with le-buckets, optional interval-quantile
// summaries and rate gauges from `frame`, and `health` as labeled gauges.
// Every line is `# HELP ...`, `# TYPE ...`, or `name{labels} value`.
void RenderPrometheusExposition(std::ostream& os,
                                const MetricsSnapshot& cumulative,
                                const TelemetryFrame* frame,
                                const std::vector<ModelHealth>& health);

// Writes one frame as a single JSONL object (the JsonlFileSink line format)
// to `os`. Exposed so `mlq_tool metrics --interval --json` can stream
// frames to stdout with the exact on-disk schema.
void RenderTelemetryFrameJsonl(std::ostream& os, const TelemetryFrame& frame);

}  // namespace obs
}  // namespace mlq

#endif  // MLQ_OBS_TELEMETRY_H_
