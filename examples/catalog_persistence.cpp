// Catalog persistence: an ORDBMS keeps its cost models in the system
// catalog across restarts. This example trains an MLQ model, serializes it
// to a file (the "catalog"), simulates a server restart by dropping all
// in-memory state, reloads the model, and verifies it predicts identically
// and keeps on learning.

#include <cstdio>
#include <string>

#include "eval/experiment_setup.h"
#include "model/serialization.h"

using namespace mlq;

int main() {
  std::printf("== Catalog persistence for MLQ cost models ==\n\n");

  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/40, /*noise_probability=*/0.0,
                                   /*seed=*/404);
  const Box space = udf->model_space();

  // Session 1: the optimizer runs for a while, learning UDF costs.
  MemoryLimitedQuadtree model(
      space, MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu));
  const auto session1 = MakePaperWorkload(
      space, QueryDistributionKind::kGaussianRandom, 2000, /*seed=*/1);
  for (const Point& q : session1) {
    model.Insert(q, udf->Execute(q).cpu_work);
  }
  std::printf("session 1: observed %lld executions, %lld quadtree nodes, "
              "%lld bytes used\n",
              static_cast<long long>(model.counters().insertions),
              static_cast<long long>(model.num_nodes()),
              static_cast<long long>(model.memory_used()));

  // Shutdown: persist the model into the catalog.
  const std::string catalog_path = "/tmp/mlq_catalog_demo.bin";
  if (!SaveQuadtreeToFile(model, catalog_path)) {
    std::printf("failed to write %s\n", catalog_path.c_str());
    return 1;
  }
  const auto bytes = SerializeQuadtree(model);
  std::printf("persisted to %s (%zu bytes on disk for %lld logical bytes)\n\n",
              catalog_path.c_str(), bytes.size(),
              static_cast<long long>(model.memory_used()));

  // Restart: load the model back.
  std::string error;
  auto restored = LoadQuadtreeFromFile(catalog_path, &error);
  if (restored == nullptr) {
    std::printf("reload failed: %s\n", error.c_str());
    return 1;
  }

  // Verify: identical predictions at fresh query points.
  const auto probes = MakePaperWorkload(
      space, QueryDistributionKind::kUniform, 1000, /*seed=*/2);
  int mismatches = 0;
  for (const Point& q : probes) {
    if (model.Predict(q).value != restored->Predict(q).value) ++mismatches;
  }
  std::printf("restart check: %d/%zu prediction mismatches (expect 0)\n",
              mismatches, probes.size());

  // Session 2: the restored model keeps self-tuning where it left off.
  const auto session2 = MakePaperWorkload(
      space, QueryDistributionKind::kGaussianRandom, 1000, /*seed=*/3);
  for (const Point& q : session2) {
    restored->Insert(q, udf->Execute(q).cpu_work);
  }
  std::string invariant_error;
  std::printf("session 2: %lld more executions observed, invariants %s, "
              "memory %lld / %lld bytes\n",
              static_cast<long long>(restored->counters().insertions),
              restored->CheckInvariants(&invariant_error) ? "OK"
                                                          : invariant_error.c_str(),
              static_cast<long long>(restored->memory_used()),
              static_cast<long long>(restored->memory_limit()));
  std::remove(catalog_path.c_str());
  return mismatches == 0 ? 0 : 1;
}
