// IO-noise tour: why the paper models CPU and disk-IO costs separately and
// predicts IO with a larger beta.
//
// This example runs the WIN spatial UDF through its buffer pool and shows
// (1) that the *same* query point returns different IO costs depending on
// cache history — the "noise" of Experiment 3 — and (2) that averaging over
// more feedback points (beta = 10) stabilizes IO predictions, while CPU
// predictions are served best at full resolution (beta = 1).

#include <cstdio>

#include "eval/experiment_setup.h"
#include "eval/metrics.h"
#include "model/mlq_model.h"

using namespace mlq;

int main() {
  std::printf("== Disk-IO cost noise and the beta parameter ==\n\n");

  const RealUdfSuite suite = MakeRealUdfSuite(SubstrateScale::kSmall);
  CostedUdf* win = suite.Find("WIN");

  // 1. The same call, repeated: CPU cost is deterministic, IO cost decays
  //    as the cache warms, then fluctuates as other queries evict pages.
  //    Probe a populated area: the neighborhood of the first data rectangle.
  const Rect& seed_rect = suite.spatial_engine->dataset().rects().front();
  const Point probe{seed_rect.CenterX(), seed_rect.CenterY(), 180.0, 180.0};
  std::printf("repeated WIN executions at the same model point:\n");
  std::printf("%6s  %12s  %10s\n", "call", "cpu (work)", "io (pages)");
  for (int i = 0; i < 5; ++i) {
    const UdfCost cost = win->Execute(probe);
    std::printf("%6d  %12.0f  %10.0f\n", i + 1, cost.cpu_work, cost.io_pages);
  }
  std::printf("(cold misses -> warm hits: the cost model sees a noisy IO "
              "surface)\n\n");

  // 2. beta sweep for IO prediction accuracy on a mixed workload.
  const auto queries = MakePaperWorkload(
      win->model_space(), QueryDistributionKind::kGaussianRandom, 2500, 42);
  std::printf("IO prediction accuracy vs beta (same tree shape, NAE):\n");
  std::printf("%6s  %10s\n", "beta", "NAE");
  for (int64_t beta : {1, 2, 5, 10, 25}) {
    win->ResetState();
    MlqConfig config = MakePaperMlqConfig(InsertionStrategy::kEager,
                                          CostKind::kIo);
    config.beta = beta;
    MlqModel model(win->model_space(), config);
    NaeAccumulator nae;
    for (const Point& q : queries) {
      const double predicted = model.Predict(q);
      const double actual = win->Execute(q).io_pages;
      nae.Add(predicted, actual);
      model.Observe(q, actual);
    }
    std::printf("%6lld  %10.4f%s\n", static_cast<long long>(beta), nae.Nae(),
                beta == kPaperBetaIo ? "   <- paper's IO setting" : "");
  }

  std::printf("\nLarger beta averages over more data points before trusting "
              "a node,\nwhich absorbs cache-induced fluctuation — exactly why "
              "the paper uses\nbeta = 1 for CPU but beta = 10 for disk IO.\n");
  return 0;
}
