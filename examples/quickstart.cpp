// Quickstart: build a self-tuning MLQ cost model for a UDF, feed it
// execution feedback, and watch its predictions sharpen.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "eval/experiment_setup.h"
#include "model/mlq_model.h"
#include "workload/query_distribution.h"

int main() {
  using namespace mlq;

  // A synthetic UDF whose cost surface has 30 peaks in a 4-d model space.
  std::unique_ptr<SyntheticUdf> udf =
      MakePaperSyntheticUdf(/*num_peaks=*/30, /*noise_probability=*/0.0,
                            /*seed=*/12345);

  // A memory-limited quadtree cost model with the paper's tuning, lazy
  // insertions, and a 1.8 KB budget.
  MlqConfig config =
      MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu);
  MlqModel model(udf->model_space(), config);

  // Simulate the optimizer loop: predict, execute, feed the actual cost
  // back (Fig. 1 of the paper).
  std::vector<Point> queries = MakePaperWorkload(
      udf->model_space(), QueryDistributionKind::kGaussianRandom,
      /*num_points=*/3000, /*seed=*/99);

  double abs_err_first = 0.0;
  double act_first = 0.0;
  double abs_err_last = 0.0;
  double act_last = 0.0;
  const size_t half = queries.size() / 2;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Point& q = queries[i];
    const double predicted = model.Predict(q);
    const double actual = udf->Execute(q).cpu_work;
    model.Observe(q, actual);
    if (i < half) {
      abs_err_first += std::abs(predicted - actual);
      act_first += actual;
    } else {
      abs_err_last += std::abs(predicted - actual);
      act_last += actual;
    }
  }

  std::printf("MLQ quickstart (%s over %s)\n", std::string(model.name()).c_str(),
              std::string(udf->name()).c_str());
  std::printf("  queries processed        : %zu\n", queries.size());
  std::printf("  NAE, first half (learning): %.4f\n",
              act_first > 0 ? abs_err_first / act_first : 0.0);
  std::printf("  NAE, second half (tuned)  : %.4f\n",
              act_last > 0 ? abs_err_last / act_last : 0.0);
  std::printf("  memory used / limit       : %lld / %lld bytes\n",
              static_cast<long long>(model.MemoryBytes()),
              static_cast<long long>(config.memory_limit_bytes));
  std::printf("  quadtree nodes            : %lld\n",
              static_cast<long long>(model.tree().num_nodes()));
  std::printf("  compressions triggered    : %lld\n",
              static_cast<long long>(model.tree().counters().compressions));
  return 0;
}
