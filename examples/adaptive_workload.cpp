// Adaptive workload: demonstrates the "self-tuning" in self-tuning UDF cost
// modeling. A statically trained histogram (SH-H) and a feedback-driven
// quadtree (MLQ-E) watch the same query stream; halfway through, the
// workload drifts onto the most expensive region of the UDF. The static
// model goes stale; MLQ follows the drift.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "eval/experiment_setup.h"
#include "eval/metrics.h"
#include "model/mlq_model.h"
#include "model/static_histogram.h"

using namespace mlq;

int main() {
  std::printf("== Self-tuning vs static under workload drift ==\n\n");

  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/30, /*noise_probability=*/0.0,
                                   /*seed=*/2026);
  const Box space = udf->model_space();
  const Point hot = udf->surface().peaks()[0].center;

  // Phase 1: clustered workload away from the hot region.
  const TrainTestWorkload phase1 = MakePaperTrainTestWorkloads(
      space, QueryDistributionKind::kGaussianRandom, 2500, 2500, /*seed=*/7);

  // Phase 2: the application changes; queries now hammer the hot region.
  std::vector<Point> stream = phase1.test;
  Rng rng(99);
  for (int i = 0; i < 2500; ++i) {
    Point q(space.dims());
    for (int d = 0; d < space.dims(); ++d) {
      q[d] = std::clamp(rng.Gaussian(hot[d], 0.05 * space.Extent(d)),
                        space.lo()[d], space.hi()[d]);
    }
    stream.push_back(q);
  }

  // SH-H trains a-priori on phase 1 (all it could have known).
  EquiHeightHistogram sh(space, kPaperMemoryBytes);
  {
    std::vector<double> costs;
    costs.reserve(phase1.training.size());
    for (const Point& p : phase1.training) {
      costs.push_back(udf->Execute(p).cpu_work);
    }
    sh.Train(phase1.training, costs);
  }

  MlqModel mlq(space, MakePaperMlqConfig(InsertionStrategy::kEager,
                                         CostKind::kCpu));

  std::printf("%10s  %10s  %10s\n", "queries", "MLQ-E NAE", "SH-H NAE");
  NaeAccumulator mlq_window;
  NaeAccumulator sh_window;
  udf->ResetState();
  for (size_t i = 0; i < stream.size(); ++i) {
    const Point& q = stream[i];
    const double mlq_pred = mlq.Predict(q);
    const double sh_pred = sh.Predict(q);
    const double actual = udf->Execute(q).cpu_work;
    mlq_window.Add(mlq_pred, actual);
    sh_window.Add(sh_pred, actual);
    mlq.Observe(q, actual);  // Feedback. SH gets none: it is static.
    if ((i + 1) % 500 == 0) {
      const bool drifted = i >= 2500;
      std::printf("%10zu  %10.4f  %10.4f%s\n", i + 1, mlq_window.Nae(),
                  sh_window.Nae(),
                  (i + 1) == 3000 ? "   <- workload drifted here" : "");
      (void)drifted;
      mlq_window.Reset();
      sh_window.Reset();
    }
  }

  std::printf("\nAfter the drift the static model keeps predicting from its "
              "stale training\ndata while MLQ re-learns the hot region from "
              "query feedback (Fig. 1 loop).\n");
  return 0;
}
