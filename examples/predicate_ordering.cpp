// Predicate ordering: the motivating application from the paper's
// introduction. A query has three expensive UDF predicates in its WHERE
// clause:
//
//   select ... from Documents d, Maps m
//   where Contains(d.text, kw)                -- PROX-style text search
//     and SnowCoverage(m.img) < 20%           -- WIN-style spatial search
//     and SimilarityDistance(d.image, shape)  -- KNN-style search
//
// The optimizer must order them by cost and selectivity. This example
// builds self-tuning MLQ cost models for the three UDFs from execution
// feedback, then shows how the learned per-tuple costs change the chosen
// predicate order — and how much the right order saves.

#include <cstdio>
#include <memory>

#include "eval/experiment_setup.h"
#include "model/mlq_model.h"
#include "optimizer/predicate_ordering.h"

using namespace mlq;

namespace {

// Trains a cost model for one UDF with feedback from `n` executions drawn
// from the given workload, then returns the predicted cost at `probe`.
double LearnAndPredict(CostedUdf& udf, MlqModel& model, int n, uint64_t seed,
                       const Point& probe) {
  const auto queries = MakePaperWorkload(
      udf.model_space(), QueryDistributionKind::kGaussianRandom, n, seed);
  for (const Point& q : queries) {
    model.Observe(q, udf.Execute(q).cpu_work);
  }
  return model.Predict(probe);
}

}  // namespace

int main() {
  std::printf("== Predicate ordering with self-tuning UDF cost models ==\n\n");

  const RealUdfSuite suite = MakeRealUdfSuite(SubstrateScale::kSmall);
  CostedUdf* prox = suite.Find("PROX");
  CostedUdf* win = suite.Find("WIN");
  CostedUdf* knn = suite.Find("KNN");

  // The probe points stand for the argument values of the current query.
  const Point prox_args = prox->model_space().Center();
  const Point win_args = win->model_space().Center();
  const Point knn_args = knn->model_space().Center();

  // Cost models learn from past executions of each UDF.
  MlqConfig config = MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu);
  MlqModel prox_model(prox->model_space(), config);
  MlqModel win_model(win->model_space(), config);
  MlqModel knn_model(knn->model_space(), config);

  const double prox_cost =
      LearnAndPredict(*prox, prox_model, 1500, 1, prox_args);
  const double win_cost = LearnAndPredict(*win, win_model, 1500, 2, win_args);
  const double knn_cost = LearnAndPredict(*knn, knn_model, 1500, 3, knn_args);

  // Selectivities would come from the selectivity estimator; fixed here.
  std::vector<PredicateEstimate> predicates = {
      {"Contains(text)", prox_cost * kMicrosPerWorkUnit, 0.15},
      {"SnowCoverage(img)", win_cost * kMicrosPerWorkUnit, 0.60},
      {"SimilarityDistance(img)", knn_cost * kMicrosPerWorkUnit, 0.30},
  };

  std::printf("learned per-tuple cost estimates (microseconds):\n");
  for (const auto& p : predicates) {
    std::printf("  %-26s cost=%10.2f  selectivity=%.2f  rank=%.6f\n",
                p.name.c_str(), p.cost_per_tuple, p.selectivity, p.Rank());
  }

  const OrderingResult best = OrderPredicates(predicates);
  const double worst = WorstSequenceCostPerTuple(predicates);

  std::printf("\noptimal evaluation order:\n");
  for (size_t i = 0; i < best.order.size(); ++i) {
    std::printf("  %zu. %s\n", i + 1,
                predicates[static_cast<size_t>(best.order[i])].name.c_str());
  }
  std::printf("\nexpected cost per tuple: %.2f us (worst order: %.2f us, "
              "saving %.1fx)\n",
              best.expected_cost_per_tuple, worst,
              worst / best.expected_cost_per_tuple);
  std::printf("\nWithout a UDF cost model the optimizer cannot tell these "
              "orders apart;\nwith MLQ it learns the costs from feedback, "
              "with zero a-priori training.\n");
  return 0;
}
