// Mini ORDBMS: the complete loop the paper targets, in one binary.
//
// A table of documents-with-locations is queried repeatedly with the
// paper's introductory query shape:
//
//   select * from docs d
//   where  Proximity(d.kw1, d.kw2, 20) >= 1      -- "Contains(d.text, ...)"
//     and  Window(d.x, d.y, 120, 120) >= 5       -- "Contained(m.img, ...)"
//     and  Knn(d.x, d.y, 10) >= 1                -- "SimilarityDistance(...)"
//
// The optimizer costs predicate orders with the catalog's self-tuning MLQ
// models (CPU, IO, and selectivity — all learned from feedback, starting
// from zero). Watch the plan and the actual execution cost evolve across
// episodes.

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "engine/cost_catalog.h"
#include "engine/executor.h"
#include "engine/query_optimizer.h"
#include "engine/table.h"
#include "engine/udf_predicate.h"
#include "eval/experiment_setup.h"

using namespace mlq;

int main() {
  std::printf("== Mini ORDBMS: self-tuning cost models inside an "
              "optimizer/executor loop ==\n\n");

  RealUdfSuite suite = MakeRealUdfSuite(SubstrateScale::kSmall);
  const auto vocab =
      static_cast<double>(suite.text_engine->index().vocab_size());

  // One table per episode (fresh tuples, same distribution), as if new
  // batches of documents keep arriving.
  auto make_table = [&vocab](uint64_t seed) {
    auto table =
        std::make_unique<Table>("docs", std::vector<std::string>{
                                            "kw1", "kw2", "x", "y"});
    Rng rng(seed);
    for (int i = 0; i < 250; ++i) {
      table->AddRow(std::vector<double>{
          std::floor(rng.Uniform(1.0, vocab)),
          std::floor(rng.Uniform(1.0, vocab)),
          rng.Uniform(0.0, 1000.0),
          rng.Uniform(0.0, 1000.0),
      });
    }
    return table;
  };

  UdfPredicate contains("Contains", suite.Find("PROX"), {0, 1, -1},
                        Point{0.0, 0.0, 20.0}, 1);
  UdfPredicate in_urban("InUrbanArea", suite.Find("WIN"), {2, 3, -1, -1},
                        Point{0.0, 0.0, 120.0, 120.0}, 5);
  UdfPredicate near_poi("NearPOI", suite.Find("KNN"), {2, 3, -1},
                        Point{0.0, 0.0, 10.0}, 1);

  CostCatalog catalog(/*memory_limit_bytes=*/1800);

  std::printf("%8s  %14s  %10s  %s\n", "episode", "actual cost", "rows out",
              "plan order");
  double first_cost = 0.0;
  double last_cost = 0.0;
  std::string last_explain;
  for (int episode = 1; episode <= 8; ++episode) {
    auto table = make_table(1000 + static_cast<uint64_t>(episode));
    Query query;
    query.table = table.get();
    query.predicates = {&near_poi, &contains, &in_urban};  // Worst-first.

    const PlannedExecution run = PlanAndExecute(query, catalog);
    std::string order;
    for (int index : run.plan.order) {
      if (!order.empty()) order += " -> ";
      order += query.predicates[static_cast<size_t>(index)]->name();
    }
    std::printf("%8d  %11.0f us  %10lld  %s\n", episode,
                run.stats.actual_cost_micros,
                static_cast<long long>(run.stats.rows_out), order.c_str());
    if (episode == 1) first_cost = run.stats.actual_cost_micros;
    last_cost = run.stats.actual_cost_micros;
    last_explain = run.plan.Explain();
  }

  std::printf("\nfinal %s", last_explain.c_str());
  std::printf("\nexecution cost, episode 8 vs episode 1: %.2fx\n",
              last_cost / first_cost);
  std::printf("\nEpisode 1 plans blind (every estimate is 0.5 / 0 us); as "
              "feedback\naccumulates, the catalog's MLQ models learn each "
              "predicate's cost and\nselectivity, and the optimizer starts "
              "running the cheap, selective\npredicates first — no manual "
              "cost model, no a-priori training.\n");
  return 0;
}
